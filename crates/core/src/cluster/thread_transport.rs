//! The real-concurrency backend: server runtimes on OS threads, **client
//! runtimes on their own OS threads too**, fabric operations as tagged
//! envelopes over channels.
//!
//! No virtual time is involved — this backend exists to show that the
//! framework's state machines (auto-registration, sender-side caching,
//! recursive forwarding, result return) are correct under genuine
//! parallelism.
//!
//! # Execution model
//!
//! * Server rank `r` (ranks `clients..clients + servers`) runs as thread
//!   node `r - clients` of a [`tc_simnet::ThreadCluster`] and drains its own
//!   inbox independently.
//! * Client rank `c` (ranks `0..clients`) owns a dedicated external port `c`
//!   of the fabric.  A **client worker thread** parks on that port's queue
//!   and handles all inbound traffic for the client: data-plane operations
//!   are delivered into the client's [`NodeRuntime`], polled, and any
//!   responses flushed back out; reliable-delivery frames and acks drive the
//!   client's own [`ReliableSet`]; completions are deposited straight into
//!   the cluster's sharded claim table (see [`Transport::attach_claims`]).
//! * The **driver thread** (whoever owns the [`ThreadTransport`]) keeps the
//!   *send* path: `flush_client` moves posted operations into the fabric
//!   synchronously on the caller's thread, so a control-plane round trip
//!   issued right after a flush still acts as a barrier behind that
//!   client's data (both ride the same per-producer FIFO channel).  Driver
//!   control traffic (peek/poke/stats) uses the shared external port
//!   `clients`, which no worker owns.
//!
//! Each client's runtime lives behind a mutex that only its worker and the
//! driver ever contend on; two different clients never share a lock, so N
//! clients genuinely execute on N cores.  `step` no longer pumps any data —
//! it parks on a progress generation that workers bump, and reports whether
//! anything moved.
//!
//! Active-Message deployment after startup works through a shared,
//! append-only handler registry: every node applies new registry entries (in
//! order) before handling each message, so `AmHandlerId`s agree cluster-wide
//! without shipping closures through channels.

use super::completion::ClaimShards;
use super::reliable::{LinkHealth, RelConfig, RelMetrics, ReliableSet};
use super::socket::most_stressed;
use super::{wire, ClientRef, ClientRefMut, Transport, TransportMetrics};
use crate::error::{CoreError, Result};
use crate::metrics::RuntimeStats;
use crate::runtime::{Completion, NativeAmHandler, NodeRuntime};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, RwLock};
use std::thread;
use std::time::{Duration, Instant};
use tc_bitir::TargetTriple;
use tc_chaos::{ChaosSession, ChaosStats, FaultPlan};
use tc_jit::{Memory, OptLevel};
use tc_simnet::{
    external_port, Envelope, EnvelopeFilter, ExternalQueue, Injector, NodeCtx, ThreadCluster,
    ThreadConfig, ThreadedNode,
};
use tc_ucx::{Bytes, WorkerAddr};

use super::ClientId;

/// Shared, append-only list of predeployed AM handlers.  Deploy order defines
/// the cluster-wide handler ids.
type AmRegistry = Arc<Mutex<Vec<(String, NativeAmHandler)>>>;

/// Lock a mutex, recovering from poison: a worker that panicked mid-update
/// may leave partial state, but every structure behind these locks is
/// per-message (delivered ops, counters) and safe to keep using — losing the
/// whole transport to a poisoned diagnostic lock would be worse.
fn relock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Scheduling tunables of the threaded backend — every value that used to
/// be a hard-coded constant, configurable through
/// [`super::ClusterBuilder::thread_tuning`].  The defaults reproduce the
/// former behaviour exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadTuning {
    /// How long one driver `step` parks on the worker-progress signal before
    /// running its idleness checks.  Workers wake the driver the moment they
    /// finish a batch (condvar notify), so this bounds *idle-detection*
    /// latency only, not delivery latency.
    pub step_timeout: Duration,
    /// Upper bound one `step` keeps waiting while node threads or client
    /// workers are verifiably busy (messages enqueued or mid-processing)
    /// without reporting progress.  Guards against a runaway ifunc wedging
    /// the driver forever.
    ///
    /// Note: this knob predates the per-client worker threads (it used to
    /// bound the driver's own receive loop, which no longer exists).  It is
    /// retained — with unchanged semantics for the idle-confirmation loop —
    /// so existing tunings keep working; new code should rarely need to
    /// touch it, since client workers now make progress without the driver.
    pub busy_step_timeout: Duration,
    /// Most inbound envelopes a *client worker* drains per wakeup (batch
    /// drain: one park, many messages).  Before the per-client worker
    /// threads this bounded the driver's own external drain; the semantics
    /// carried over to the workers unchanged.
    pub step_batch: usize,
    /// Consecutive idle steps before waits give up.  A step only reports
    /// idle after `step_timeout` of silence with zero pending node-bound or
    /// worker-bound messages, so two suffice: the second covers the one-step
    /// race where a worker finished a batch right as the first park timed
    /// out.
    pub idle_grace: u32,
    /// Most messages a *node thread* drains per wakeup (the former
    /// `MAX_BATCH` in `tc_simnet::threaded`).
    pub node_batch: usize,
    /// How long a control-plane round trip (peek/poke/stats) may take.
    pub control_timeout: Duration,
}

impl Default for ThreadTuning {
    fn default() -> Self {
        ThreadTuning {
            step_timeout: Duration::from_millis(20),
            busy_step_timeout: Duration::from_secs(1),
            step_batch: 128,
            idle_grace: 2,
            node_batch: 128,
            control_timeout: Duration::from_secs(10),
        }
    }
}

/// Map a threaded-fabric sender/receiver id to a cluster rank in a cluster
/// with `clients` driver-side runtimes: external port `p` is client rank
/// `p`, thread node `n` is rank `n + clients`.  (The single-client layout —
/// client rank 0, thread node `n` at rank `n + 1` — is the `clients == 1`
/// case.)  The driver's control port (`p == clients`) is not a data-plane
/// endpoint and never reaches this map on a faulted or reliable path.
fn rank_of(clients: usize, fabric_id: usize) -> usize {
    match external_port(fabric_id) {
        Some(port) => port,
        None => fabric_id + clients,
    }
}

/// An encoded-but-unwrapped data-plane message buffered for retransmission:
/// the op head (without the reliability prefix — each transmission gets a
/// fresh cumulative ack) and the detached payload segment.
type StoredEnv = (Bytes, Bytes);

/// Per-rank reliability counters published by their owner (the owning node
/// thread for servers; the client's worker thread or the driver's flush path
/// for clients) and read by the driver without taking any lock.
struct RelSlot {
    retransmits: AtomicU64,
    dup_drops: AtomicU64,
    out_of_order: AtomicU64,
    acks_sent: AtomicU64,
    unacked: AtomicU64,
    /// Earliest armed retransmission deadline of this rank, on the shared
    /// epoch clock; `u64::MAX` when nothing is outstanding.
    next_deadline: AtomicU64,
    /// Most-stressed-link health of this rank (RTT estimator state for the
    /// link with the most unacked frames).  `health_peer == u64::MAX` means
    /// no link has carried traffic yet.  Published field-by-field with
    /// relaxed stores — the snapshot is diagnostic, tearing between fields
    /// is acceptable.
    health_peer: AtomicU64,
    health_srtt: AtomicU64,
    health_rttvar: AtomicU64,
    health_rto: AtomicU64,
    health_unacked: AtomicU64,
    health_silent: AtomicU64,
}

impl Default for RelSlot {
    fn default() -> Self {
        RelSlot {
            retransmits: AtomicU64::new(0),
            dup_drops: AtomicU64::new(0),
            out_of_order: AtomicU64::new(0),
            acks_sent: AtomicU64::new(0),
            unacked: AtomicU64::new(0),
            next_deadline: AtomicU64::new(u64::MAX),
            health_peer: AtomicU64::new(u64::MAX),
            health_srtt: AtomicU64::new(0),
            health_rttvar: AtomicU64::new(0),
            health_rto: AtomicU64::new(0),
            health_unacked: AtomicU64::new(0),
            health_silent: AtomicU64::new(0),
        }
    }
}

/// Shared table of every rank's reliability counters.
struct RelTable {
    slots: Vec<RelSlot>,
}

impl RelTable {
    fn new(ranks: usize) -> Self {
        RelTable {
            slots: (0..ranks).map(|_| RelSlot::default()).collect(),
        }
    }

    fn publish(&self, rank: usize, set: &ReliableSet<StoredEnv>) {
        let s = &self.slots[rank];
        s.retransmits
            .store(set.metrics.retransmits, Ordering::Relaxed);
        s.dup_drops.store(set.metrics.dup_drops, Ordering::Relaxed);
        s.out_of_order
            .store(set.metrics.out_of_order, Ordering::Relaxed);
        s.acks_sent.store(set.metrics.acks_sent, Ordering::Relaxed);
        s.next_deadline
            .store(set.next_deadline().unwrap_or(u64::MAX), Ordering::Relaxed);
        if let Some(h) = most_stressed(&set.link_health()) {
            s.health_srtt.store(h.srtt, Ordering::Relaxed);
            s.health_rttvar.store(h.rttvar, Ordering::Relaxed);
            s.health_rto.store(h.rto, Ordering::Relaxed);
            s.health_unacked.store(h.unacked, Ordering::Relaxed);
            s.health_silent
                .store(u64::from(h.silent_rounds), Ordering::Relaxed);
            s.health_peer.store(h.peer as u64, Ordering::Relaxed);
        }
        // SeqCst: the driver's idleness check must not miss outstanding
        // frames behind a relaxed store.
        s.unacked.store(set.unacked_total(), Ordering::SeqCst);
    }

    fn snapshot(&self, rank: usize) -> Option<RelMetrics> {
        let s = self.slots.get(rank)?;
        Some(RelMetrics {
            retransmits: s.retransmits.load(Ordering::Relaxed),
            dup_drops: s.dup_drops.load(Ordering::Relaxed),
            out_of_order: s.out_of_order.load(Ordering::Relaxed),
            acks_sent: s.acks_sent.load(Ordering::Relaxed),
        })
    }

    /// Most-stressed-link health last published by `rank`, if any link has
    /// carried reliable traffic there.
    fn health_snapshot(&self, rank: usize) -> Option<LinkHealth> {
        let s = self.slots.get(rank)?;
        let peer = s.health_peer.load(Ordering::Relaxed);
        if peer == u64::MAX {
            return None;
        }
        Some(LinkHealth {
            peer: peer as u32,
            srtt: s.health_srtt.load(Ordering::Relaxed),
            rttvar: s.health_rttvar.load(Ordering::Relaxed),
            rto: s.health_rto.load(Ordering::Relaxed),
            unacked: s.health_unacked.load(Ordering::Relaxed),
            silent_rounds: s.health_silent.load(Ordering::Relaxed) as u32,
        })
    }

    fn total_unacked(&self) -> u64 {
        self.slots
            .iter()
            .map(|s| s.unacked.load(Ordering::SeqCst))
            .sum()
    }

    fn earliest_deadline(&self) -> Option<u64> {
        self.slots
            .iter()
            .map(|s| s.next_deadline.load(Ordering::Relaxed))
            .min()
            .filter(|&d| d != u64::MAX)
    }

    fn totals(&self) -> (u64, u64) {
        self.slots.iter().fold((0, 0), |(r, d), s| {
            (
                r + s.retransmits.load(Ordering::Relaxed),
                d + s.dup_drops.load(Ordering::Relaxed),
            )
        })
    }
}

/// Reliability state of one node thread (server side).
struct NodeRel {
    set: ReliableSet<StoredEnv>,
    table: Arc<RelTable>,
    rank: usize,
    epoch: Instant,
}

impl NodeRel {
    fn now(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Transmit a reliable envelope to `peer` (rank) through the node ctx.
    /// Ranks below `clients` are driver-side endpoints (external ports).
    fn transmit(
        ctx: &NodeCtx,
        clients: usize,
        peer: usize,
        seq: u64,
        ack: u64,
        head: &Bytes,
        payload: Bytes,
    ) {
        let data = wire::encode_rel_head(seq, ack, head);
        let _ = if peer < clients {
            ctx.send_external_port_vectored(peer, wire::TAG_ROP, data, payload)
        } else {
            ctx.send_vectored(peer - clients, wire::TAG_ROP, data, payload)
        };
    }

    /// Send a pure ack to `peer` (rank).
    fn send_ack(ctx: &NodeCtx, clients: usize, peer: usize, ack: u64) {
        let bytes = wire::encode_ack(ack);
        let _ = if peer < clients {
            ctx.send_external_port(peer, wire::TAG_ACK, bytes)
        } else {
            ctx.send(peer - clients, wire::TAG_ACK, bytes)
        };
    }
}

/// Report a node-side failure to the driver's control port.  Errors ride the
/// same queue as control replies, so the existing FIFO barrier argument
/// holds: an error emitted before a stats reply is collected before it.
fn report_error(ctx: &NodeCtx, control_port: usize, text: String) {
    let _ = ctx.send_external_port(control_port, wire::TAG_ERROR, text.into_bytes());
}

/// A server node: owns a full Three-Chains runtime and speaks the transport's
/// wire protocol.
struct ServerNode {
    runtime: NodeRuntime,
    /// Number of driver-side client ranks (this node's rank is
    /// `clients + thread_id`; the driver's control port is `clients`).
    clients: usize,
    am_registry: AmRegistry,
    am_applied: usize,
    /// Reliability state when a fault plan is installed; `None` keeps the
    /// original lossless fast path byte-for-byte.
    rel: Option<NodeRel>,
}

impl ServerNode {
    fn sync_am(&mut self) {
        let registry = self.am_registry.lock().expect("AM registry poisoned");
        for (name, handler) in registry.iter().skip(self.am_applied) {
            self.runtime
                .deploy_am_handler(name.clone(), handler.clone());
        }
        self.am_applied = registry.len();
    }

    fn route_outgoing(&mut self, ctx: &NodeCtx) {
        let clients = self.clients;
        for msg in self.runtime.take_outgoing() {
            let dst = msg.dst.index();
            // Scatter-gather: the head is pooled, large payloads ship as a
            // shared view (no copy).  Drops are counted by the ThreadCluster's
            // delivery counters and surfaced through the transport metrics.
            let (head, payload) = wire::encode_op_vectored(&msg);
            // Two cases bypass the reliability layer and go out raw:
            // misaddressed sends (rank beyond the cluster — they would
            // retransmit forever; the raw path lets the fabric count the
            // drop, exactly like the driver path) and self-sends (the
            // simulated backend excludes loopback from the fault model, so
            // the threaded backend must too or the chaos schedules
            // diverge).  Valid remote ranks are `0..clients` (driver-side
            // clients) and `clients..clients + node_count()` (servers).
            let own_rank = self.runtime.node_id().index();
            let bypass_rel =
                dst >= clients && (dst >= clients + ctx.node_count() || dst == own_rank);
            match &mut self.rel {
                Some(rel) if !bypass_rel => {
                    let now = rel.now();
                    let (seq, ack) = rel
                        .set
                        .send(dst as u32, (head.clone(), payload.clone()), now);
                    NodeRel::transmit(ctx, clients, dst, seq, ack, &head, payload);
                }
                _ => {
                    let _ = if dst < clients {
                        ctx.send_external_port_vectored(dst, wire::TAG_OP, head, payload)
                    } else {
                        ctx.send_vectored(dst - clients, wire::TAG_OP, head, payload)
                    };
                }
            }
        }
        if let Some(rel) = &self.rel {
            rel.table.publish(rel.rank, &rel.set);
        }
    }
}

impl ThreadedNode for ServerNode {
    /// One wakeup's worth of envelopes.  Consecutive data-plane messages are
    /// delivered together and polled/flushed once, so a burst of N ifunc
    /// frames pays for one poll loop and one outgoing flush instead of N.
    /// Control messages are handled strictly in FIFO position (the control
    /// plane doubles as a barrier behind the data plane).
    fn on_batch(&mut self, msgs: Vec<Envelope>, ctx: &NodeCtx) {
        self.sync_am();
        let control_port = self.clients;
        let mut pending_ops = false;
        for msg in msgs {
            if msg.tag == wire::TAG_OP {
                match wire::decode_op_vectored(&msg.data, &msg.payload) {
                    Ok(op) => {
                        self.runtime.deliver(op);
                        pending_ops = true;
                    }
                    Err(e) => report_error(ctx, control_port, e.to_string()),
                }
                continue;
            }
            if msg.tag == wire::TAG_ROP {
                pending_ops |= self.on_reliable_op(msg, ctx);
                continue;
            }
            if msg.tag == wire::TAG_ACK {
                let clients = self.clients;
                if let (Some(rel), Ok(ack)) = (&mut self.rel, wire::decode_ack(&msg.data)) {
                    let now = rel.now();
                    rel.set.on_ack(rank_of(clients, msg.from) as u32, ack, now);
                    rel.table.publish(rel.rank, &rel.set);
                }
                continue;
            }
            if pending_ops {
                self.process_delivered(ctx);
                pending_ops = false;
            }
            self.on_control(msg, ctx);
        }
        if pending_ops {
            self.process_delivered(ctx);
        }
    }

    fn on_message(&mut self, msg: Envelope, ctx: &NodeCtx) {
        self.on_batch(vec![msg], ctx);
    }

    fn on_tick(&mut self, ctx: &NodeCtx) {
        let clients = self.clients;
        let Some(rel) = &mut self.rel else {
            return;
        };
        let now = rel.now();
        for f in rel.set.tick(now) {
            NodeRel::transmit(
                ctx,
                clients,
                f.peer as usize,
                f.seq,
                f.ack,
                &f.m.0,
                f.m.1.clone(),
            );
        }
        rel.table.publish(rel.rank, &rel.set);
    }
}

impl ServerNode {
    /// Handle one reliable data-plane envelope: run it through the node's
    /// reliability state, ack the sender, deliver whatever became in-order.
    /// Returns true when operations were delivered to the runtime.
    fn on_reliable_op(&mut self, msg: Envelope, ctx: &NodeCtx) -> bool {
        let clients = self.clients;
        let Some(rel) = &mut self.rel else {
            report_error(
                ctx,
                clients,
                "reliable envelope on a node without a fault plan".into(),
            );
            return false;
        };
        let src = rank_of(clients, msg.from);
        let (seq, ack, head) = match wire::decode_rel_head(&msg.data) {
            Ok(parts) => parts,
            Err(e) => {
                report_error(ctx, clients, e.to_string());
                return false;
            }
        };
        let now = rel.now();
        let out = rel
            .set
            .on_data(src as u32, seq, ack, (head, msg.payload), now);
        NodeRel::send_ack(ctx, clients, src, out.ack);
        rel.table.publish(rel.rank, &rel.set);
        let mut delivered = false;
        for (h, p) in out.deliver {
            match wire::decode_op_vectored(&h, &p) {
                Ok(op) => {
                    self.runtime.deliver(op);
                    delivered = true;
                }
                Err(e) => report_error(ctx, clients, e.to_string()),
            }
        }
        delivered
    }

    /// Poll every delivered operation and flush whatever the runtime posted.
    fn process_delivered(&mut self, ctx: &NodeCtx) {
        let control_port = self.clients;
        for outcome in self.runtime.poll(usize::MAX) {
            if let Err(e) = outcome {
                report_error(ctx, control_port, e.to_string());
            }
        }
        self.route_outgoing(ctx);
    }

    /// Handle one control-plane envelope, replying to whichever external
    /// port issued it (the driver's control port in practice).
    fn on_control(&mut self, msg: Envelope, ctx: &NodeCtx) {
        let reply_to = external_port(msg.from).unwrap_or(self.clients);
        match msg.tag {
            wire::TAG_PEEK => {
                let Ok((token, body)) = wire::decode_control(&msg.data) else {
                    return;
                };
                if body.len() != 16 {
                    return;
                }
                let addr = u64::from_le_bytes(body[0..8].try_into().unwrap());
                let len = u64::from_le_bytes(body[8..16].try_into().unwrap()) as usize;
                let mut buf = vec![0u8; len];
                let reply = match self.runtime.memory.read(addr, &mut buf) {
                    Ok(()) => wire::encode_control(token, &buf),
                    Err(_) => wire::encode_control(token, &[]),
                };
                let _ = ctx.send_external_port(reply_to, wire::TAG_PEEK_REPLY, reply);
            }
            wire::TAG_POKE => {
                let Ok((token, body)) = wire::decode_control(&msg.data) else {
                    return;
                };
                if body.len() < 8 {
                    return;
                }
                let addr = u64::from_le_bytes(body[0..8].try_into().unwrap());
                let ok = self.runtime.memory.write(addr, &body[8..]).is_ok();
                let _ = ctx.send_external_port(
                    reply_to,
                    wire::TAG_POKE_ACK,
                    wire::encode_control(token, &[ok as u8]),
                );
            }
            wire::TAG_STATS => {
                let Ok((token, _)) = wire::decode_control(&msg.data) else {
                    return;
                };
                let reply = wire::encode_control(token, &wire::encode_stats(&self.runtime.stats));
                let _ = ctx.send_external_port(reply_to, wire::TAG_STATS_REPLY, reply);
            }
            _ => {}
        }
    }
}

/// Build the interposing envelope filter that injects a [`ChaosSession`]'s
/// decisions into the threaded fabric.  Only reliable data-plane traffic
/// ([`wire::TAG_ROP`]) and acks ([`wire::TAG_ACK`]) are faulted; the
/// control plane (peek/poke/stats) stays exact so observation never lies.
///
/// Delay and reorder share one mechanism — the envelope is *held back* and
/// released behind the link's next traffic (wall-clock sleeping inside a
/// sender is not an option).  A held envelope that is never overtaken is
/// recovered by the retransmission timer, whose re-send also flushes it.
///
/// `clients` maps fabric ids to cluster ranks, so the per-link decision
/// streams are drawn for the *true* (src rank, dst rank) pair — a send from
/// client 1 and one from client 0 to the same server are different links,
/// exactly as on the simulated backend.  Client-worker injections pass the
/// same filter as node and driver sends, so moving the clients onto worker
/// threads changes nothing about which traffic is faulted.
fn chaos_filter(session: ChaosSession, clients: usize) -> EnvelopeFilter {
    let held: Mutex<HashMap<(usize, usize), Envelope>> = Mutex::new(HashMap::new());
    Arc::new(move |env: Envelope| {
        if env.tag != wire::TAG_ROP && env.tag != wire::TAG_ACK {
            return vec![env];
        }
        let src = rank_of(clients, env.from);
        let dst = rank_of(clients, env.to);
        let decision = session.decide(src, dst);
        if !decision.deliver {
            return Vec::new();
        }
        let mut out = Vec::new();
        let mut held = held.lock().expect("chaos hold-back table poisoned");
        if decision.reorder || decision.delay_units > 0 {
            if decision.duplicate {
                out.push(env.clone());
            }
            // Park this envelope; release whatever the link previously
            // parked (it has now been overtaken at least once).
            if let Some(prev) = held.insert((src, dst), env) {
                out.push(prev);
            }
            return out;
        }
        if decision.duplicate {
            out.push(env.clone());
        }
        out.push(env);
        if let Some(prev) = held.remove(&(src, dst)) {
            out.push(prev);
        }
        out
    })
}

/// One driver-side client: its runtime and (in chaos mode) its reliability
/// state, each behind its own lock.  Only two threads ever touch a given
/// client — its worker and the driver — so these locks are two-party and
/// uncontended in steady state.
///
/// Lock discipline: `runtime` and `rel` are leaf locks (never held while
/// acquiring another client's locks); `order` serialises whole
/// flush-outgoing passes and is the only lock held across a sequence of
/// sends (see [`flush_outgoing`]).
struct ClientShared {
    runtime: Mutex<NodeRuntime>,
    /// Reliability state when a fault plan is installed; one independent
    /// sequence space per (client, server) link, exactly as before.
    rel: Option<Mutex<ReliableSet<StoredEnv>>>,
    /// Flush serialiser: take-outgoing and the resulting sends must form one
    /// critical section per client, or a driver `flush_client` racing the
    /// client's worker could invert same-link wire order (e.g. ship a
    /// cached-id ifunc frame ahead of the registration frame it needs).
    order: Mutex<()>,
}

/// Worker→driver progress signal: a generation counter bumped after every
/// batch of client-side work, with a condvar the driver's `step` parks on.
struct Progress {
    gen: Mutex<u64>,
    cv: Condvar,
}

impl Progress {
    fn new() -> Self {
        Progress {
            gen: Mutex::new(0),
            cv: Condvar::new(),
        }
    }

    fn bump(&self) {
        *relock(&self.gen) += 1;
        self.cv.notify_all();
    }

    /// Wait until the generation moves past `seen` (or `timeout`).  Returns
    /// the current generation and whether it advanced.
    fn wait_past(&self, seen: u64, timeout: Duration) -> (u64, bool) {
        let g = relock(&self.gen);
        if *g != seen {
            return (*g, true);
        }
        let (g, _) = self
            .cv
            .wait_timeout_while(g, timeout, |g| *g == seen)
            .unwrap_or_else(|e| e.into_inner());
        (*g, *g != seen)
    }
}

/// State shared by the driver and every client worker thread.
struct WorkerShared {
    clients: Vec<ClientShared>,
    servers: usize,
    /// The cluster's sharded claim table, installed by
    /// [`Transport::attach_claims`].  Until it is attached (or when the
    /// transport is driven without a [`super::Cluster`]), completions stay
    /// buffered in the client runtimes and flow through
    /// [`Transport::take_completions`] as before.  A re-attach *replaces*
    /// the table: `ClusterBuilder::build` wraps the transport in a
    /// `Cluster` once per boxing layer, and only the outermost cluster's
    /// table is live.
    claims: RwLock<Option<Arc<ClaimShards>>>,
    /// Errors reported by server nodes, client workers, or the driver's own
    /// decode paths.
    errors: Mutex<Vec<CoreError>>,
    progress: Progress,
    stop: AtomicBool,
    /// Shared reliability counter table (chaos mode only).
    rel_table: Option<Arc<RelTable>>,
    /// Transport-clock origin; shared with the reliability layer's
    /// timestamps in chaos mode.
    epoch: Instant,
}

impl WorkerShared {
    fn now(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    fn push_error(&self, e: CoreError) {
        relock(&self.errors).push(e);
    }

    /// Move client `c`'s buffered completions into the sharded claim table,
    /// if one is attached.
    fn deposit_completions(&self, c: usize) {
        let claims = self
            .claims
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .clone();
        let Some(claims) = claims else {
            return;
        };
        let completions = relock(&self.clients[c].runtime).take_completions();
        if !completions.is_empty() {
            claims.absorb(ClientId(c), completions);
        }
    }

    /// Publish client `c`'s reliability counters to the shared table.
    fn publish_rel(&self, c: usize) {
        if let (Some(table), Some(rel)) = (&self.rel_table, &self.clients[c].rel) {
            table.publish(c, &relock(rel));
        }
    }
}

/// Move everything client `origin` posted into the threaded fabric, looping
/// until the outgoing queues are quiescent.  Client-to-client traffic
/// (including client-to-self) is delivered locally — under the *destination*
/// runtime's lock only, never two runtime locks at once — and may post
/// follow-on operations (GET replies, result writes) that go out in the same
/// flush, possibly from a different client than the origin.
///
/// Callable from the driver (`flush_client`) and from client workers
/// (response flushing) alike; the per-client `order` lock keeps concurrent
/// flushers of the *same* client from interleaving their take/send windows.
fn flush_outgoing(shared: &WorkerShared, injector: &Injector, origin: usize) {
    let clients = shared.clients.len();
    let mut dirty = vec![origin];
    while let Some(c) = dirty.pop() {
        let _order = relock(&shared.clients[c].order);
        loop {
            let outgoing = relock(&shared.clients[c].runtime).take_outgoing();
            if outgoing.is_empty() {
                break;
            }
            for msg in outgoing {
                let dst = msg.dst.index();
                if dst < clients {
                    // Client-to-client delivery: execute locally (loopback
                    // class, like the simulated backend's self-delivery —
                    // never faulted).
                    let mut errs = Vec::new();
                    {
                        let mut rt = relock(&shared.clients[dst].runtime);
                        rt.deliver(msg);
                        for outcome in rt.poll(usize::MAX) {
                            if let Err(e) = outcome {
                                errs.push(e);
                            }
                        }
                    }
                    for e in errs {
                        shared.push_error(e);
                    }
                    shared.deposit_completions(dst);
                    if dst != c && !dirty.contains(&dst) {
                        dirty.push(dst);
                    }
                    continue;
                }
                // Server-bound: thread node ids are rank - clients.  Drops
                // (unknown rank, stopped node) are recorded in the cluster's
                // counters and show up in the transport metrics, mirroring
                // the fabric's lossy-but-accounted model.
                let (head, payload) = wire::encode_op_vectored(&msg);
                match &shared.clients[c].rel {
                    Some(rel) if dst < clients + shared.servers => {
                        let now = shared.now();
                        let (seq, ack) =
                            relock(rel).send(dst as u32, (head.clone(), payload.clone()), now);
                        let data = wire::encode_rel_head(seq, ack, &head);
                        let _ = injector.send_vectored_from_port(
                            c,
                            dst - clients,
                            wire::TAG_ROP,
                            data,
                            payload,
                        );
                    }
                    _ => {
                        // Lossless — or misaddressed in chaos mode, which
                        // skips reliability (it would retransmit forever)
                        // and lets the fabric count the drop.
                        let _ = injector.send_vectored_from_port(
                            c,
                            dst - clients,
                            wire::TAG_OP,
                            head,
                            payload,
                        );
                    }
                }
            }
        }
        shared.publish_rel(c);
    }
}

/// Poll everything delivered to client `c`'s runtime, flush whatever it
/// posted in response, and deposit its completions.
fn pump_client(shared: &WorkerShared, injector: &Injector, c: usize) {
    let mut errs = Vec::new();
    {
        let mut rt = relock(&shared.clients[c].runtime);
        for outcome in rt.poll(usize::MAX) {
            if let Err(e) = outcome {
                errs.push(e);
            }
        }
    }
    for e in errs {
        shared.push_error(e);
    }
    flush_outgoing(shared, injector, c);
    shared.deposit_completions(c);
}

/// Everything one client worker thread needs.
struct WorkerCtx {
    /// The client rank this worker owns (also its external port).
    id: usize,
    queue: ExternalQueue,
    shared: Arc<WorkerShared>,
    injector: Injector,
    /// Most envelopes drained per wakeup ([`ThreadTuning::step_batch`]).
    batch: usize,
    /// Receive-park bound: doubles as the stop-flag poll interval and (in
    /// chaos mode) the retransmission-tick cadence floor.
    park: Duration,
    /// Retransmission cadence when a fault plan is installed.
    tick: Option<Duration>,
}

/// Run client `ctx.id`'s retransmission timer.
fn tick_rel(ctx: &WorkerCtx) {
    let shared = &*ctx.shared;
    let c = ctx.id;
    let clients = shared.clients.len();
    let Some(rel) = &shared.clients[c].rel else {
        return;
    };
    let now = shared.now();
    let frames = relock(rel).tick(now);
    for f in frames {
        let peer = f.peer as usize;
        if peer < clients {
            continue; // loopback links never enter the reliable layer
        }
        let data = wire::encode_rel_head(f.seq, f.ack, &f.m.0);
        let _ = ctx
            .injector
            .send_vectored_from_port(c, peer - clients, wire::TAG_ROP, data, f.m.1);
    }
    shared.publish_rel(c);
}

/// Handle one batch of inbound envelopes for this worker's client.  Marks
/// every client runtime that received operations in `staged` (the op head
/// carries the true destination rank; in practice that is this worker's own
/// client, but a misrouted head is delivered where it says, as the old
/// driver loop did).
fn process_batch(ctx: &WorkerCtx, staged: &mut [bool], batch: Vec<Envelope>) {
    let shared = &*ctx.shared;
    let c = ctx.id;
    let clients = shared.clients.len();
    for env in batch {
        match env.tag {
            wire::TAG_OP => match wire::decode_op_vectored(&env.data, &env.payload) {
                Ok(msg) if msg.dst.index() < clients => {
                    let dst = msg.dst.index();
                    relock(&shared.clients[dst].runtime).deliver(msg);
                    staged[dst] = true;
                }
                Ok(msg) => shared.push_error(CoreError::Transport(format!(
                    "driver received an operation for non-client rank {}",
                    msg.dst.index()
                ))),
                Err(e) => shared.push_error(e),
            },
            wire::TAG_ROP => {
                let Some(rel) = &shared.clients[c].rel else {
                    shared.push_error(CoreError::Transport(
                        "reliable envelope without a fault plan".into(),
                    ));
                    continue;
                };
                let src = rank_of(clients, env.from);
                let (seq, ack, head) = match wire::decode_rel_head(&env.data) {
                    Ok(parts) => parts,
                    Err(e) => {
                        shared.push_error(e);
                        continue;
                    }
                };
                let now = shared.now();
                let out = relock(rel).on_data(src as u32, seq, ack, (head, env.payload), now);
                if src >= clients && src < clients + shared.servers {
                    let _ = ctx.injector.send_from_port(
                        c,
                        src - clients,
                        wire::TAG_ACK,
                        wire::encode_ack(out.ack),
                    );
                }
                shared.publish_rel(c);
                for (h, p) in out.deliver {
                    match wire::decode_op_vectored(&h, &p) {
                        Ok(msg) if msg.dst.index() < clients => {
                            let dst = msg.dst.index();
                            relock(&shared.clients[dst].runtime).deliver(msg);
                            staged[dst] = true;
                        }
                        Ok(msg) => shared.push_error(CoreError::Transport(format!(
                            "driver received an operation for non-client rank {}",
                            msg.dst.index()
                        ))),
                        Err(e) => shared.push_error(e),
                    }
                }
            }
            wire::TAG_ACK => {
                if let (Some(rel), Ok(ack)) = (&shared.clients[c].rel, wire::decode_ack(&env.data))
                {
                    let now = shared.now();
                    relock(rel).on_ack(rank_of(clients, env.from) as u32, ack, now);
                    shared.publish_rel(c);
                }
            }
            wire::TAG_ERROR => shared.push_error(CoreError::Transport(
                String::from_utf8_lossy(&env.data).into_owned(),
            )),
            // Control replies never arrive here (the driver owns its own
            // port); anything else is stale and dropped.
            _ => {}
        }
    }
}

/// The body of one client worker thread: park on the client's dedicated
/// external queue, process inbound batches, run the retransmission timer,
/// and signal the driver after every batch.  In-flight accounting
/// (`ExternalQueue::done`) is released only after the batch is fully
/// processed — delivered, polled, flushed, deposited — so the driver's
/// quiescence detection spans worker processing, not just queue emptiness.
fn run_worker(ctx: WorkerCtx) {
    let clients = ctx.shared.clients.len();
    let mut staged = vec![false; clients];
    let mut last_tick = Instant::now();
    loop {
        if ctx.shared.stop.load(Ordering::SeqCst) {
            ctx.queue.drain();
            return;
        }
        if let Some(env) = ctx.queue.recv_timeout(ctx.park) {
            // Drain the burst behind the first envelope: one park, one batch.
            let mut batch = vec![env];
            while batch.len() < ctx.batch {
                match ctx.queue.try_recv() {
                    Some(env) => batch.push(env),
                    None => break,
                }
            }
            let n = batch.len() as u64;
            process_batch(&ctx, &mut staged, batch);
            for (dst, dirty) in staged.iter_mut().enumerate() {
                if std::mem::take(dirty) {
                    pump_client(&ctx.shared, &ctx.injector, dst);
                }
            }
            ctx.queue.done(n);
            ctx.shared.progress.bump();
        }
        // The retransmission timer runs on its cadence whether or not
        // traffic flows (a parked envelope is recovered by the re-send).
        if let Some(tick) = ctx.tick {
            if last_tick.elapsed() >= tick {
                last_tick = Instant::now();
                tick_rel(&ctx);
            }
        }
    }
}

/// Driver-side chaos state: the shared fault session and the counter table
/// (per-client reliability lives with the clients in [`ClientShared`]).
struct DriverChaos {
    session: ChaosSession,
    table: Arc<RelTable>,
    /// The reliability layer's backoff cap, in nanoseconds — the longest
    /// silence a healthy-but-lossy link can exhibit between retransmission
    /// rounds.  Quiescence detection must out-wait several of these.
    rto_max: u64,
}

/// The real-concurrency cluster backend (threads + channels, wall-clock time).
pub struct ThreadTransport {
    /// Client runtimes and reliability state, shared with the client worker
    /// threads.
    shared: Arc<WorkerShared>,
    /// One worker thread per client, each owning that client's dedicated
    /// external queue.
    workers: Vec<thread::JoinHandle<()>>,
    /// `None` once shut down (threads joined).
    cluster: Option<ThreadCluster>,
    /// Injection handle for the driver's own synchronous send path.
    injector: Injector,
    /// Delivery counters captured at shutdown so `metrics` stays meaningful.
    final_metrics: tc_simnet::ThreadMetrics,
    servers: usize,
    am_registry: AmRegistry,
    next_token: u64,
    tuning: ThreadTuning,
    /// Chaos-mode state (fault session + counter table); `None` keeps the
    /// lossless fast path.
    chaos: Option<DriverChaos>,
    /// Transport-clock origin ([`Transport::now_nanos`] measures from here).
    epoch: Instant,
    /// Since when `step` has seen zero progress while reliability frames
    /// stay unacked (chaos mode).  Bounds how long outstanding
    /// retransmissions can keep the driver reporting "busy" — a frame that
    /// can never be acked (e.g. a dead node thread) must eventually let
    /// waits time out instead of spinning forever.
    stalled_since: Option<Instant>,
    /// Last observed worker-progress generation.
    seen_gen: u64,
}

impl std::fmt::Debug for ThreadTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadTransport")
            .field("clients", &self.shared.clients.len())
            .field("servers", &self.servers)
            .field("errors", &relock(&self.shared.errors).len())
            .finish()
    }
}

impl ThreadTransport {
    /// Start a backend with one client (rank 0, on its own worker thread)
    /// and `servers` threaded server nodes (ranks 1..=servers).
    pub fn new(servers: usize, client_triple: TargetTriple, server_triple: TargetTriple) -> Self {
        Self::with_opt(servers, client_triple, server_triple, OptLevel::O2)
    }

    /// Constructor with default tuning, one client and no fault plan.
    pub fn with_opt(
        servers: usize,
        client_triple: TargetTriple,
        server_triple: TargetTriple,
        opt_level: OptLevel,
    ) -> Self {
        Self::with_config(
            1,
            servers,
            client_triple,
            server_triple,
            opt_level,
            ThreadTuning::default(),
            None,
            None,
        )
    }

    /// Full-control constructor used by the cluster builder: `clients`
    /// client runtimes (ranks `0..clients`, one worker thread each),
    /// `servers` threaded server nodes (ranks `clients..clients+servers`),
    /// scheduling tunables plus an optional fault plan.  With a plan
    /// installed, every data-plane envelope passes the chaos engine's
    /// envelope filter and travels over the reliable-delivery layer
    /// (sequence numbers, cumulative acks, retransmission, dedup) — with one
    /// independent sequence space per (client, server) link.
    #[allow(clippy::too_many_arguments)]
    pub fn with_config(
        clients: usize,
        servers: usize,
        client_triple: TargetTriple,
        server_triple: TargetTriple,
        opt_level: OptLevel,
        tuning: ThreadTuning,
        fault_plan: Option<FaultPlan>,
        rel_config: Option<RelConfig>,
    ) -> Self {
        let clients = clients.max(1);
        let total = (servers + clients) as u32;
        let am_registry: AmRegistry = Arc::new(Mutex::new(Vec::new()));
        let registry_for_nodes = Arc::clone(&am_registry);

        let epoch = Instant::now();
        let rel_cfg = rel_config.unwrap_or_else(RelConfig::threads_default);
        let chaos = fault_plan.map(|plan| DriverChaos {
            session: ChaosSession::new(plan),
            table: Arc::new(RelTable::new(servers + clients)),
            rto_max: rel_cfg.rto_max,
        });
        let tick = chaos
            .as_ref()
            .map(|_| Duration::from_nanos(rel_cfg.rto / 2));

        let mut config = ThreadConfig {
            max_batch: tuning.node_batch,
            dedicated_external_ports: clients,
            ..ThreadConfig::default()
        };
        let node_chaos = chaos.as_ref().map(|c| {
            config.tick = tick;
            config.filter = Some(chaos_filter(c.session.clone(), clients));
            Arc::clone(&c.table)
        });

        let mut cluster = ThreadCluster::start_with_config(servers, config, move |thread_id| {
            let rank = (thread_id + clients) as u32;
            ServerNode {
                runtime: NodeRuntime::with_opt_level(
                    WorkerAddr(rank),
                    total,
                    server_triple,
                    opt_level,
                ),
                clients,
                am_registry: Arc::clone(&registry_for_nodes),
                am_applied: 0,
                rel: node_chaos.as_ref().map(|table| NodeRel {
                    set: ReliableSet::new(rel_cfg),
                    table: Arc::clone(table),
                    rank: rank as usize,
                    epoch,
                }),
            }
        });

        let shared = Arc::new(WorkerShared {
            clients: (0..clients)
                .map(|c| ClientShared {
                    runtime: Mutex::new(NodeRuntime::with_opt_level(
                        WorkerAddr(c as u32),
                        total,
                        client_triple,
                        opt_level,
                    )),
                    rel: chaos
                        .as_ref()
                        .map(|_| Mutex::new(ReliableSet::new(rel_cfg))),
                    order: Mutex::new(()),
                })
                .collect(),
            servers,
            claims: RwLock::new(None),
            errors: Mutex::new(Vec::new()),
            progress: Progress::new(),
            stop: AtomicBool::new(false),
            rel_table: chaos.as_ref().map(|c| Arc::clone(&c.table)),
            epoch,
        });

        let injector = cluster.injector();
        let park = tick
            .map(|t| t.min(tuning.step_timeout))
            .unwrap_or(tuning.step_timeout)
            .max(Duration::from_micros(50));
        let workers = (0..clients)
            .map(|c| {
                let ctx = WorkerCtx {
                    id: c,
                    queue: cluster
                        .take_external_queue(c)
                        .expect("dedicated client queue"),
                    shared: Arc::clone(&shared),
                    injector: injector.clone(),
                    batch: tuning.step_batch.max(1),
                    park,
                    tick,
                };
                thread::Builder::new()
                    .name(format!("tc-client-{c}"))
                    .spawn(move || run_worker(ctx))
                    .expect("spawn client worker thread")
            })
            .collect();

        ThreadTransport {
            shared,
            workers,
            cluster: Some(cluster),
            injector,
            final_metrics: tc_simnet::ThreadMetrics::default(),
            servers,
            am_registry,
            next_token: 1,
            tuning,
            chaos,
            epoch,
            stalled_since: None,
            seen_gen: 0,
        }
    }

    /// Snapshot of the injected-fault counters (chaos mode only).
    pub fn chaos_stats(&self) -> Option<ChaosStats> {
        self.chaos.as_ref().map(|c| c.session.stats())
    }

    /// Reliability counters of one rank (chaos mode only).
    pub fn rel_metrics(&self, rank: usize) -> Option<RelMetrics> {
        self.chaos.as_ref().and_then(|c| c.table.snapshot(rank))
    }

    /// Errors reported by server nodes, client workers, or transport-level
    /// decode failures, in observation order (a snapshot — the shared list
    /// keeps growing while workers run).
    pub fn errors(&self) -> Vec<CoreError> {
        relock(&self.shared.errors).clone()
    }

    /// Handle a non-reply envelope that reached the driver's control port
    /// (error reports, stale control replies).
    fn on_driver_envelope(&self, env: Envelope) {
        if env.tag == wire::TAG_ERROR {
            self.shared.push_error(CoreError::Transport(
                String::from_utf8_lossy(&env.data).into_owned(),
            ));
        }
        // Stale control replies (from a timed-out request) are dropped; live
        // ones are intercepted by `control_roundtrip` before this.
    }

    /// Issue a control request to server `rank` and wait for its tokened
    /// reply.  The request is sent from the driver's own control port
    /// (`clients`), so the reply comes back on the shared queue no worker
    /// owns; data-plane traffic keeps flowing through the workers in the
    /// meantime.
    fn control_roundtrip(
        &mut self,
        rank: usize,
        request_tag: u64,
        reply_tag: u64,
        body: &[u8],
    ) -> Result<Vec<u8>> {
        let clients = self.shared.clients.len();
        if rank < clients || rank >= clients + self.servers {
            return Err(CoreError::Transport(format!(
                "control request addressed to invalid rank {rank} ({}..={} expected)",
                clients,
                clients + self.servers - 1
            )));
        }
        let token = self.next_token;
        self.next_token += 1;
        let status = match &self.cluster {
            Some(cluster) => cluster.send_from_port(
                clients,
                rank - clients,
                request_tag,
                wire::encode_control(token, body),
            ),
            None => return Err(CoreError::Transport("thread transport is shut down".into())),
        };
        if !status.is_delivered() {
            return Err(CoreError::Transport(format!(
                "control request to rank {rank} not delivered: {status:?}"
            )));
        }
        let deadline = Instant::now() + self.tuning.control_timeout;
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(CoreError::WaitTimeout {
                    what: format!("control reply (tag {reply_tag}) from rank {rank}"),
                });
            }
            let env = match &self.cluster {
                Some(cluster) => cluster.recv_external(remaining),
                None => return Err(CoreError::Transport("thread transport is shut down".into())),
            };
            let Some(env) = env else {
                continue;
            };
            if env.tag == reply_tag && env.from == rank - clients {
                if let Ok((reply_token, reply_body)) = wire::decode_control(&env.data) {
                    if reply_token == token {
                        return Ok(reply_body.to_vec());
                    }
                    continue; // stale reply from an abandoned request
                }
            }
            self.on_driver_envelope(env);
        }
    }
}

impl Transport for ThreadTransport {
    fn backend_name(&self) -> &'static str {
        "threads"
    }

    /// Per-link reliability health, assembled **without blocking any client
    /// worker**: every rank — clients included — reports the most-stressed
    /// link it last published to the shared atomic table (one row per rank).
    /// Rows are read field-by-field with relaxed loads, so a snapshot may
    /// tear between fields of a row that is being republished concurrently;
    /// the values are diagnostic and each field is individually recent.
    fn link_health(&self) -> Vec<(u32, LinkHealth)> {
        let Some(chaos) = &self.chaos else {
            return Vec::new();
        };
        let ranks = self.shared.clients.len() + self.servers;
        (0..ranks)
            .filter_map(|rank| chaos.table.health_snapshot(rank).map(|h| (rank as u32, h)))
            .collect()
    }

    fn node_count(&self) -> usize {
        self.servers + self.shared.clients.len()
    }

    fn client_count(&self) -> usize {
        self.shared.clients.len()
    }

    fn client(&self, id: ClientId) -> ClientRef<'_> {
        assert!(id.0 < self.shared.clients.len(), "no client with id {id}");
        ClientRef::Locked(relock(&self.shared.clients[id.0].runtime))
    }

    fn client_mut(&mut self, id: ClientId) -> ClientRefMut<'_> {
        assert!(id.0 < self.shared.clients.len(), "no client with id {id}");
        ClientRefMut::Locked(relock(&self.shared.clients[id.0].runtime))
    }

    fn attach_claims(&mut self, claims: &Arc<ClaimShards>) {
        // Workers pick the table up through the shared slot and start
        // depositing completions directly; `take_completions` then drains
        // whatever (rare) residue is still buffered runtime-side.  Replace,
        // don't set-once: `ClusterBuilder::build` wraps the transport in a
        // `Cluster` twice (once typed, once boxed) and only the outer
        // cluster's table is ever read.
        *self
            .shared
            .claims
            .write()
            .unwrap_or_else(|e| e.into_inner()) = Some(Arc::clone(claims));
    }

    fn deploy_am(&mut self, name: &str, handler: NativeAmHandler) -> Result<()> {
        // Clients apply immediately (under their runtime locks); servers
        // catch up (in registry order, hence with identical handler ids)
        // before their next message.
        for client in &self.shared.clients {
            relock(&client.runtime).deploy_am_handler(name.to_string(), handler.clone());
        }
        self.am_registry
            .lock()
            .map_err(|_| CoreError::Transport("AM registry poisoned".into()))?
            .push((name.to_string(), handler));
        Ok(())
    }

    fn flush_client(&mut self, id: ClientId) -> Result<()> {
        if id.0 >= self.shared.clients.len() {
            return Err(CoreError::Transport(format!("no client with id {id}")));
        }
        if self.cluster.is_none() {
            return Err(CoreError::Transport("thread transport is shut down".into()));
        }
        // Synchronous on the caller's thread: when this returns, the ops are
        // in the node channels, so a control round trip issued next acts as
        // a barrier behind them (same per-producer FIFO).
        flush_outgoing(&self.shared, &self.injector, id.0);
        Ok(())
    }

    fn step(&mut self) -> Result<bool> {
        let busy_deadline = Instant::now() + self.tuning.busy_step_timeout;
        let step_timeout = self.tuning.step_timeout;
        loop {
            let Some(cluster) = &self.cluster else {
                return Ok(false);
            };
            // Driver-port housekeeping: error reports and stale control
            // replies addressed to the control port.
            let mut drained = false;
            while let Some(env) = cluster.try_recv_external() {
                self.on_driver_envelope(env);
                drained = true;
            }
            if drained {
                self.stalled_since = None;
                return Ok(true);
            }
            // Park until a worker signals progress (completions deposited,
            // ops delivered, acks processed) or the idle-check timeout.
            let (gen, progressed) = self.shared.progress.wait_past(self.seen_gen, step_timeout);
            self.seen_gen = gen;
            if progressed {
                self.stalled_since = None;
                return Ok(true);
            }
            // step_timeout of silence.  Only call it idleness when no
            // node-bound or worker-bound message is queued or mid-processing
            // — and, in chaos mode, no frame anywhere awaits an ack (a
            // partitioned link with retransmits pending is *busy*, not idle)
            // — otherwise keep waiting (bounded).
            let unacked = self
                .chaos
                .as_ref()
                .map(|c| c.table.total_unacked())
                .unwrap_or(0);
            if unacked > 0 {
                // Reliability work is outstanding: report progress so waits
                // keep running — but bound the total silence.  A frame that
                // stays unacked through many busy budgets with zero traffic
                // (dead node thread, unhealable partition) must not wedge
                // idleness detection forever.
                //
                // The bound must out-wait the retransmission machinery
                // itself: with an armed RTO deadline, a healthy link can
                // legitimately stay silent for a full backed-off round (up
                // to `rto_max`), so a horizon shorter than a few such rounds
                // would declare `WaitTimeout` on traffic the reliable layer
                // was about to recover (the pre-fix bug when
                // `busy_step_timeout` was tuned below the RTO backoff).
                let now = Instant::now();
                let since = *self.stalled_since.get_or_insert(now);
                let rel_horizon = self
                    .chaos
                    .as_ref()
                    .map(|c| Duration::from_nanos(c.rto_max) * 4)
                    .unwrap_or(Duration::ZERO);
                let horizon = (self.tuning.busy_step_timeout * 10).max(rel_horizon);
                if now.duration_since(since) < horizon {
                    return Ok(true);
                }
                return Ok(false);
            }
            self.stalled_since = None;
            if cluster.pending_messages() == 0 || Instant::now() >= busy_deadline {
                return Ok(false);
            }
        }
    }

    fn idle_grace(&self) -> u32 {
        self.tuning.idle_grace
    }

    fn take_completions(&mut self, id: ClientId) -> Vec<Completion> {
        assert!(id.0 < self.shared.clients.len(), "no client with id {id}");
        // Post-`attach_claims` the worker deposits straight into the shards
        // and this is usually empty; completions produced on the driver's
        // own paths (loopback before attach) still flow through here.
        relock(&self.shared.clients[id.0].runtime).take_completions()
    }

    fn now_nanos(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    fn unacked_total(&self) -> u64 {
        self.chaos
            .as_ref()
            .map(|c| c.table.total_unacked())
            .unwrap_or(0)
    }

    fn next_rel_deadline(&self) -> Option<u64> {
        self.chaos
            .as_ref()
            .and_then(|c| c.table.earliest_deadline())
    }

    fn read_memory(&mut self, rank: usize, addr: u64, len: usize) -> Result<Vec<u8>> {
        if rank < self.shared.clients.len() {
            let mut buf = vec![0u8; len];
            relock(&self.shared.clients[rank].runtime)
                .memory
                .read(addr, &mut buf)
                .map_err(|e| CoreError::Transport(e.to_string()))?;
            return Ok(buf);
        }
        let mut body = Vec::with_capacity(16);
        body.extend_from_slice(&addr.to_le_bytes());
        body.extend_from_slice(&(len as u64).to_le_bytes());
        let reply = self.control_roundtrip(rank, wire::TAG_PEEK, wire::TAG_PEEK_REPLY, &body)?;
        if reply.len() != len {
            return Err(CoreError::Transport(format!(
                "peek of {len} bytes at {addr:#x} on rank {rank} failed"
            )));
        }
        Ok(reply)
    }

    fn write_memory(&mut self, rank: usize, addr: u64, data: &[u8]) -> Result<()> {
        if rank < self.shared.clients.len() {
            return relock(&self.shared.clients[rank].runtime)
                .memory
                .write(addr, data)
                .map_err(|e| CoreError::Transport(e.to_string()));
        }
        let mut body = Vec::with_capacity(8 + data.len());
        body.extend_from_slice(&addr.to_le_bytes());
        body.extend_from_slice(data);
        let reply = self.control_roundtrip(rank, wire::TAG_POKE, wire::TAG_POKE_ACK, &body)?;
        if reply != [1] {
            return Err(CoreError::Transport(format!(
                "poke of {} bytes at {addr:#x} on rank {rank} failed",
                data.len()
            )));
        }
        Ok(())
    }

    fn node_stats(&mut self, rank: usize) -> Result<RuntimeStats> {
        if rank < self.shared.clients.len() {
            return Ok(relock(&self.shared.clients[rank].runtime).stats);
        }
        let reply = self.control_roundtrip(rank, wire::TAG_STATS, wire::TAG_STATS_REPLY, &[])?;
        wire::decode_stats(&reply)
    }

    fn metrics(&self) -> TransportMetrics {
        let m = self
            .cluster
            .as_ref()
            .map(|c| c.metrics())
            .unwrap_or(self.final_metrics);
        let (retransmits, dup_drops) = self
            .chaos
            .as_ref()
            .map(|c| c.table.totals())
            .unwrap_or((0, 0));
        TransportMetrics {
            messages_delivered: m.delivered,
            messages_dropped: m.dropped(),
            bytes_sent: self
                .shared
                .clients
                .iter()
                .map(|c| relock(&c.runtime).stats.bytes_sent)
                .sum(),
            retransmits,
            dup_drops,
            faults_injected: self
                .chaos
                .as_ref()
                .map(|c| c.session.stats().total_injected())
                .unwrap_or(0),
        }
    }

    fn node_reliability(&self, rank: usize) -> Option<RelMetrics> {
        self.rel_metrics(rank)
    }

    fn chaos_stats(&self) -> Option<ChaosStats> {
        ThreadTransport::chaos_stats(self)
    }

    fn shutdown(&mut self) {
        if let Some(cluster) = self.cluster.take() {
            self.shared.stop.store(true, Ordering::SeqCst);
            for w in self.workers.drain(..) {
                let _ = w.join();
            }
            self.final_metrics = cluster.metrics();
            cluster.shutdown();
        }
    }
}

impl Drop for ThreadTransport {
    fn drop(&mut self) {
        self.shutdown();
    }
}
