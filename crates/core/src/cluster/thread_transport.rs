//! The real-concurrency backend: server runtimes on OS threads, the client
//! runtime on the driving thread, fabric operations as tagged envelopes over
//! channels.
//!
//! No virtual time is involved — this backend exists to show that the
//! framework's state machines (auto-registration, sender-side caching,
//! recursive forwarding, result return) are correct under genuine
//! parallelism.  Server rank `r` (1-based) runs as thread node `r - 1` of a
//! [`tc_simnet::ThreadCluster`]; the client (rank 0) stays on the driver
//! thread so sends and completion waits need no extra synchronisation.
//!
//! Active-Message deployment after startup works through a shared,
//! append-only handler registry: every node applies new registry entries (in
//! order) before handling each message, so `AmHandlerId`s agree cluster-wide
//! without shipping closures through channels.

use super::reliable::{LinkHealth, RelConfig, RelMetrics, ReliableSet};
use super::socket::most_stressed;
use super::{wire, Transport, TransportMetrics};
use crate::error::{CoreError, Result};
use crate::metrics::RuntimeStats;
use crate::runtime::{Completion, NativeAmHandler, NodeRuntime};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use tc_bitir::TargetTriple;
use tc_chaos::{ChaosSession, ChaosStats, FaultPlan};
use tc_jit::{Memory, OptLevel};
use tc_simnet::{
    external_port, Envelope, EnvelopeFilter, NodeCtx, ThreadCluster, ThreadConfig, ThreadedNode,
};
use tc_ucx::{Bytes, WorkerAddr};

use super::ClientId;

/// Shared, append-only list of predeployed AM handlers.  Deploy order defines
/// the cluster-wide handler ids.
type AmRegistry = Arc<Mutex<Vec<(String, NativeAmHandler)>>>;

/// Scheduling tunables of the threaded backend — every value that used to
/// be a hard-coded constant, configurable through
/// [`super::ClusterBuilder::thread_tuning`].  The defaults reproduce the
/// former behaviour exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadTuning {
    /// How long one driver `step` parks waiting for traffic before checking
    /// the cluster's pending-message counter.  The park wakes immediately
    /// when a node enqueues an external message (mpsc `recv_timeout`), so
    /// this bounds *idle-detection* latency only, not delivery latency.
    pub step_timeout: Duration,
    /// Upper bound one `step` keeps waiting while node threads are
    /// verifiably busy (messages enqueued or mid-processing) without
    /// producing external traffic.  Guards against a runaway ifunc wedging
    /// the driver forever.
    pub busy_step_timeout: Duration,
    /// Most external envelopes drained per `step` after a wakeup (batch
    /// drain: one park, many messages).
    pub step_batch: usize,
    /// Consecutive idle steps before waits give up.  A step only reports
    /// idle after `step_timeout` of silence with zero pending node-bound
    /// messages, so two suffice: the second covers the one-step race where
    /// a node enqueued an external message right as the first park timed
    /// out.
    pub idle_grace: u32,
    /// Most messages a *node thread* drains per wakeup (the former
    /// `MAX_BATCH` in `tc_simnet::threaded`).
    pub node_batch: usize,
    /// How long a control-plane round trip (peek/poke/stats) may take.
    pub control_timeout: Duration,
}

impl Default for ThreadTuning {
    fn default() -> Self {
        ThreadTuning {
            step_timeout: Duration::from_millis(20),
            busy_step_timeout: Duration::from_secs(1),
            step_batch: 128,
            idle_grace: 2,
            node_batch: 128,
            control_timeout: Duration::from_secs(10),
        }
    }
}

/// Map a threaded-fabric sender/receiver id to a cluster rank in a cluster
/// with `clients` driver-side runtimes: external port `p` is client rank
/// `p`, thread node `n` is rank `n + clients`.  (The single-client layout —
/// driver rank 0, thread node `n` at rank `n + 1` — is the `clients == 1`
/// case.)
fn rank_of(clients: usize, fabric_id: usize) -> usize {
    match external_port(fabric_id) {
        Some(port) => port,
        None => fabric_id + clients,
    }
}

/// An encoded-but-unwrapped data-plane message buffered for retransmission:
/// the op head (without the reliability prefix — each transmission gets a
/// fresh cumulative ack) and the detached payload segment.
type StoredEnv = (Bytes, Bytes);

/// Per-rank reliability counters published by their single writer (the
/// owning node thread, or the driver for rank 0) and read by the driver.
struct RelSlot {
    retransmits: AtomicU64,
    dup_drops: AtomicU64,
    out_of_order: AtomicU64,
    acks_sent: AtomicU64,
    unacked: AtomicU64,
    /// Earliest armed retransmission deadline of this rank, on the shared
    /// epoch clock; `u64::MAX` when nothing is outstanding.
    next_deadline: AtomicU64,
    /// Most-stressed-link health of this rank (RTT estimator state for the
    /// link with the most unacked frames).  `health_peer == u64::MAX` means
    /// no link has carried traffic yet.  Published field-by-field with
    /// relaxed stores — the snapshot is diagnostic, tearing between fields
    /// is acceptable.
    health_peer: AtomicU64,
    health_srtt: AtomicU64,
    health_rttvar: AtomicU64,
    health_rto: AtomicU64,
    health_unacked: AtomicU64,
    health_silent: AtomicU64,
}

impl Default for RelSlot {
    fn default() -> Self {
        RelSlot {
            retransmits: AtomicU64::new(0),
            dup_drops: AtomicU64::new(0),
            out_of_order: AtomicU64::new(0),
            acks_sent: AtomicU64::new(0),
            unacked: AtomicU64::new(0),
            next_deadline: AtomicU64::new(u64::MAX),
            health_peer: AtomicU64::new(u64::MAX),
            health_srtt: AtomicU64::new(0),
            health_rttvar: AtomicU64::new(0),
            health_rto: AtomicU64::new(0),
            health_unacked: AtomicU64::new(0),
            health_silent: AtomicU64::new(0),
        }
    }
}

/// Shared table of every rank's reliability counters.
struct RelTable {
    slots: Vec<RelSlot>,
}

impl RelTable {
    fn new(ranks: usize) -> Self {
        RelTable {
            slots: (0..ranks).map(|_| RelSlot::default()).collect(),
        }
    }

    fn publish(&self, rank: usize, set: &ReliableSet<StoredEnv>) {
        let s = &self.slots[rank];
        s.retransmits
            .store(set.metrics.retransmits, Ordering::Relaxed);
        s.dup_drops.store(set.metrics.dup_drops, Ordering::Relaxed);
        s.out_of_order
            .store(set.metrics.out_of_order, Ordering::Relaxed);
        s.acks_sent.store(set.metrics.acks_sent, Ordering::Relaxed);
        s.next_deadline
            .store(set.next_deadline().unwrap_or(u64::MAX), Ordering::Relaxed);
        if let Some(h) = most_stressed(&set.link_health()) {
            s.health_srtt.store(h.srtt, Ordering::Relaxed);
            s.health_rttvar.store(h.rttvar, Ordering::Relaxed);
            s.health_rto.store(h.rto, Ordering::Relaxed);
            s.health_unacked.store(h.unacked, Ordering::Relaxed);
            s.health_silent
                .store(u64::from(h.silent_rounds), Ordering::Relaxed);
            s.health_peer.store(h.peer as u64, Ordering::Relaxed);
        }
        // SeqCst: the driver's idleness check must not miss outstanding
        // frames behind a relaxed store.
        s.unacked.store(set.unacked_total(), Ordering::SeqCst);
    }

    fn snapshot(&self, rank: usize) -> Option<RelMetrics> {
        let s = self.slots.get(rank)?;
        Some(RelMetrics {
            retransmits: s.retransmits.load(Ordering::Relaxed),
            dup_drops: s.dup_drops.load(Ordering::Relaxed),
            out_of_order: s.out_of_order.load(Ordering::Relaxed),
            acks_sent: s.acks_sent.load(Ordering::Relaxed),
        })
    }

    /// Most-stressed-link health last published by `rank`, if any link has
    /// carried reliable traffic there.
    fn health_snapshot(&self, rank: usize) -> Option<LinkHealth> {
        let s = self.slots.get(rank)?;
        let peer = s.health_peer.load(Ordering::Relaxed);
        if peer == u64::MAX {
            return None;
        }
        Some(LinkHealth {
            peer: peer as u32,
            srtt: s.health_srtt.load(Ordering::Relaxed),
            rttvar: s.health_rttvar.load(Ordering::Relaxed),
            rto: s.health_rto.load(Ordering::Relaxed),
            unacked: s.health_unacked.load(Ordering::Relaxed),
            silent_rounds: s.health_silent.load(Ordering::Relaxed) as u32,
        })
    }

    fn total_unacked(&self) -> u64 {
        self.slots
            .iter()
            .map(|s| s.unacked.load(Ordering::SeqCst))
            .sum()
    }

    fn earliest_deadline(&self) -> Option<u64> {
        self.slots
            .iter()
            .map(|s| s.next_deadline.load(Ordering::Relaxed))
            .min()
            .filter(|&d| d != u64::MAX)
    }

    fn totals(&self) -> (u64, u64) {
        self.slots.iter().fold((0, 0), |(r, d), s| {
            (
                r + s.retransmits.load(Ordering::Relaxed),
                d + s.dup_drops.load(Ordering::Relaxed),
            )
        })
    }
}

/// Reliability state of one node thread (server side).
struct NodeRel {
    set: ReliableSet<StoredEnv>,
    table: Arc<RelTable>,
    rank: usize,
    epoch: Instant,
}

impl NodeRel {
    fn now(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Transmit a reliable envelope to `peer` (rank) through the node ctx.
    /// Ranks below `clients` are driver-side endpoints (external ports).
    fn transmit(
        ctx: &NodeCtx,
        clients: usize,
        peer: usize,
        seq: u64,
        ack: u64,
        head: &Bytes,
        payload: Bytes,
    ) {
        let data = wire::encode_rel_head(seq, ack, head);
        let _ = if peer < clients {
            ctx.send_external_port_vectored(peer, wire::TAG_ROP, data, payload)
        } else {
            ctx.send_vectored(peer - clients, wire::TAG_ROP, data, payload)
        };
    }

    /// Send a pure ack to `peer` (rank).
    fn send_ack(ctx: &NodeCtx, clients: usize, peer: usize, ack: u64) {
        let bytes = wire::encode_ack(ack);
        let _ = if peer < clients {
            ctx.send_external_port(peer, wire::TAG_ACK, bytes)
        } else {
            ctx.send(peer - clients, wire::TAG_ACK, bytes)
        };
    }
}

/// Transmit a reliable envelope from driver-side client `client` to server
/// rank `peer` (used by first sends and retransmissions alike — the one
/// place the driver-side TAG_ROP framing lives).
#[allow(clippy::too_many_arguments)]
fn driver_transmit(
    cluster: &ThreadCluster,
    clients: usize,
    client: usize,
    peer: usize,
    seq: u64,
    ack: u64,
    head: &Bytes,
    payload: Bytes,
) {
    let data = wire::encode_rel_head(seq, ack, head);
    let _ = cluster.send_vectored_from_port(client, peer - clients, wire::TAG_ROP, data, payload);
}

/// Driver-side chaos state: the shared fault session, one reliability state
/// machine per client (sequence spaces of different client ranks must never
/// interfere — each client is its own source endpoint on every link), and
/// the shared counter table.
struct DriverChaos {
    session: ChaosSession,
    rels: Vec<ReliableSet<StoredEnv>>,
    table: Arc<RelTable>,
    epoch: Instant,
    last_tick: Instant,
    tick: Duration,
    /// The reliability layer's backoff cap, in nanoseconds — the longest
    /// silence a healthy-but-lossy link can exhibit between retransmission
    /// rounds.  Quiescence detection must out-wait several of these.
    rto_max: u64,
}

impl DriverChaos {
    fn publish(&self, client: usize) {
        self.table.publish(client, &self.rels[client]);
    }
}

/// A server node: owns a full Three-Chains runtime and speaks the transport's
/// wire protocol.
struct ServerNode {
    runtime: NodeRuntime,
    /// Number of driver-side client ranks (this node's rank is
    /// `clients + thread_id`).
    clients: usize,
    am_registry: AmRegistry,
    am_applied: usize,
    /// Reliability state when a fault plan is installed; `None` keeps the
    /// original lossless fast path byte-for-byte.
    rel: Option<NodeRel>,
}

impl ServerNode {
    fn sync_am(&mut self) {
        let registry = self.am_registry.lock().expect("AM registry poisoned");
        for (name, handler) in registry.iter().skip(self.am_applied) {
            self.runtime
                .deploy_am_handler(name.clone(), handler.clone());
        }
        self.am_applied = registry.len();
    }

    fn route_outgoing(&mut self, ctx: &NodeCtx) {
        let clients = self.clients;
        for msg in self.runtime.take_outgoing() {
            let dst = msg.dst.index();
            // Scatter-gather: the head is pooled, large payloads ship as a
            // shared view (no copy).  Drops are counted by the ThreadCluster's
            // delivery counters and surfaced through the transport metrics.
            let (head, payload) = wire::encode_op_vectored(&msg);
            // Two cases bypass the reliability layer and go out raw:
            // misaddressed sends (rank beyond the cluster — they would
            // retransmit forever; the raw path lets the fabric count the
            // drop, exactly like the driver path) and self-sends (the
            // simulated backend excludes loopback from the fault model, so
            // the threaded backend must too or the chaos schedules
            // diverge).  Valid remote ranks are `0..clients` (driver-side
            // clients) and `clients..clients + node_count()` (servers).
            let own_rank = self.runtime.node_id().index();
            let bypass_rel =
                dst >= clients && (dst >= clients + ctx.node_count() || dst == own_rank);
            match &mut self.rel {
                Some(rel) if !bypass_rel => {
                    let now = rel.now();
                    let (seq, ack) = rel
                        .set
                        .send(dst as u32, (head.clone(), payload.clone()), now);
                    NodeRel::transmit(ctx, clients, dst, seq, ack, &head, payload);
                }
                _ => {
                    let _ = if dst < clients {
                        ctx.send_external_port_vectored(dst, wire::TAG_OP, head, payload)
                    } else {
                        ctx.send_vectored(dst - clients, wire::TAG_OP, head, payload)
                    };
                }
            }
        }
        if let Some(rel) = &self.rel {
            rel.table.publish(rel.rank, &rel.set);
        }
    }
}

impl ThreadedNode for ServerNode {
    /// One wakeup's worth of envelopes.  Consecutive data-plane messages are
    /// delivered together and polled/flushed once, so a burst of N ifunc
    /// frames pays for one poll loop and one outgoing flush instead of N.
    /// Control messages are handled strictly in FIFO position (the control
    /// plane doubles as a barrier behind the data plane).
    fn on_batch(&mut self, msgs: Vec<Envelope>, ctx: &NodeCtx) {
        self.sync_am();
        let mut pending_ops = false;
        for msg in msgs {
            if msg.tag == wire::TAG_OP {
                match wire::decode_op_vectored(&msg.data, &msg.payload) {
                    Ok(op) => {
                        self.runtime.deliver(op);
                        pending_ops = true;
                    }
                    Err(e) => {
                        let _ = ctx.send_external(wire::TAG_ERROR, e.to_string().into_bytes());
                    }
                }
                continue;
            }
            if msg.tag == wire::TAG_ROP {
                pending_ops |= self.on_reliable_op(msg, ctx);
                continue;
            }
            if msg.tag == wire::TAG_ACK {
                let clients = self.clients;
                if let (Some(rel), Ok(ack)) = (&mut self.rel, wire::decode_ack(&msg.data)) {
                    let now = rel.now();
                    rel.set.on_ack(rank_of(clients, msg.from) as u32, ack, now);
                    rel.table.publish(rel.rank, &rel.set);
                }
                continue;
            }
            if pending_ops {
                self.process_delivered(ctx);
                pending_ops = false;
            }
            self.on_control(msg, ctx);
        }
        if pending_ops {
            self.process_delivered(ctx);
        }
    }

    fn on_message(&mut self, msg: Envelope, ctx: &NodeCtx) {
        self.on_batch(vec![msg], ctx);
    }

    fn on_tick(&mut self, ctx: &NodeCtx) {
        let clients = self.clients;
        let Some(rel) = &mut self.rel else {
            return;
        };
        let now = rel.now();
        for f in rel.set.tick(now) {
            NodeRel::transmit(
                ctx,
                clients,
                f.peer as usize,
                f.seq,
                f.ack,
                &f.m.0,
                f.m.1.clone(),
            );
        }
        rel.table.publish(rel.rank, &rel.set);
    }
}

impl ServerNode {
    /// Handle one reliable data-plane envelope: run it through the node's
    /// reliability state, ack the sender, deliver whatever became in-order.
    /// Returns true when operations were delivered to the runtime.
    fn on_reliable_op(&mut self, msg: Envelope, ctx: &NodeCtx) -> bool {
        let clients = self.clients;
        let Some(rel) = &mut self.rel else {
            let _ = ctx.send_external(
                wire::TAG_ERROR,
                b"reliable envelope on a node without a fault plan".to_vec(),
            );
            return false;
        };
        let src = rank_of(clients, msg.from);
        let (seq, ack, head) = match wire::decode_rel_head(&msg.data) {
            Ok(parts) => parts,
            Err(e) => {
                let _ = ctx.send_external(wire::TAG_ERROR, e.to_string().into_bytes());
                return false;
            }
        };
        let now = rel.now();
        let out = rel
            .set
            .on_data(src as u32, seq, ack, (head, msg.payload), now);
        NodeRel::send_ack(ctx, clients, src, out.ack);
        rel.table.publish(rel.rank, &rel.set);
        let mut delivered = false;
        for (h, p) in out.deliver {
            match wire::decode_op_vectored(&h, &p) {
                Ok(op) => {
                    self.runtime.deliver(op);
                    delivered = true;
                }
                Err(e) => {
                    let _ = ctx.send_external(wire::TAG_ERROR, e.to_string().into_bytes());
                }
            }
        }
        delivered
    }

    /// Poll every delivered operation and flush whatever the runtime posted.
    fn process_delivered(&mut self, ctx: &NodeCtx) {
        for outcome in self.runtime.poll(usize::MAX) {
            if let Err(e) = outcome {
                let _ = ctx.send_external(wire::TAG_ERROR, e.to_string().into_bytes());
            }
        }
        self.route_outgoing(ctx);
    }

    /// Handle one control-plane envelope.
    fn on_control(&mut self, msg: Envelope, ctx: &NodeCtx) {
        match msg.tag {
            wire::TAG_PEEK => {
                let Ok((token, body)) = wire::decode_control(&msg.data) else {
                    return;
                };
                if body.len() != 16 {
                    return;
                }
                let addr = u64::from_le_bytes(body[0..8].try_into().unwrap());
                let len = u64::from_le_bytes(body[8..16].try_into().unwrap()) as usize;
                let mut buf = vec![0u8; len];
                let reply = match self.runtime.memory.read(addr, &mut buf) {
                    Ok(()) => wire::encode_control(token, &buf),
                    Err(_) => wire::encode_control(token, &[]),
                };
                let _ = ctx.send_external(wire::TAG_PEEK_REPLY, reply);
            }
            wire::TAG_POKE => {
                let Ok((token, body)) = wire::decode_control(&msg.data) else {
                    return;
                };
                if body.len() < 8 {
                    return;
                }
                let addr = u64::from_le_bytes(body[0..8].try_into().unwrap());
                let ok = self.runtime.memory.write(addr, &body[8..]).is_ok();
                let _ =
                    ctx.send_external(wire::TAG_POKE_ACK, wire::encode_control(token, &[ok as u8]));
            }
            wire::TAG_STATS => {
                let Ok((token, _)) = wire::decode_control(&msg.data) else {
                    return;
                };
                let reply = wire::encode_control(token, &wire::encode_stats(&self.runtime.stats));
                let _ = ctx.send_external(wire::TAG_STATS_REPLY, reply);
            }
            _ => {}
        }
    }
}

/// Build the interposing envelope filter that injects a [`ChaosSession`]'s
/// decisions into the threaded fabric.  Only reliable data-plane traffic
/// ([`wire::TAG_ROP`]) and acks ([`wire::TAG_ACK`]) are faulted; the
/// control plane (peek/poke/stats) stays exact so observation never lies.
///
/// Delay and reorder share one mechanism — the envelope is *held back* and
/// released behind the link's next traffic (wall-clock sleeping inside a
/// sender is not an option).  A held envelope that is never overtaken is
/// recovered by the retransmission timer, whose re-send also flushes it.
///
/// `clients` maps fabric ids to cluster ranks, so the per-link decision
/// streams are drawn for the *true* (src rank, dst rank) pair — a send from
/// client 1 and one from client 0 to the same server are different links,
/// exactly as on the simulated backend.
fn chaos_filter(session: ChaosSession, clients: usize) -> EnvelopeFilter {
    let held: Mutex<HashMap<(usize, usize), Envelope>> = Mutex::new(HashMap::new());
    Arc::new(move |env: Envelope| {
        if env.tag != wire::TAG_ROP && env.tag != wire::TAG_ACK {
            return vec![env];
        }
        let src = rank_of(clients, env.from);
        let dst = rank_of(clients, env.to);
        let decision = session.decide(src, dst);
        if !decision.deliver {
            return Vec::new();
        }
        let mut out = Vec::new();
        let mut held = held.lock().expect("chaos hold-back table poisoned");
        if decision.reorder || decision.delay_units > 0 {
            if decision.duplicate {
                out.push(env.clone());
            }
            // Park this envelope; release whatever the link previously
            // parked (it has now been overtaken at least once).
            if let Some(prev) = held.insert((src, dst), env) {
                out.push(prev);
            }
            return out;
        }
        if decision.duplicate {
            out.push(env.clone());
        }
        out.push(env);
        if let Some(prev) = held.remove(&(src, dst)) {
            out.push(prev);
        }
        out
    })
}

/// The real-concurrency cluster backend (threads + channels, wall-clock time).
pub struct ThreadTransport {
    /// Driver-side client runtimes, one per client rank (`0..clients.len()`).
    /// All live on the driving thread; each keeps its own staging queue
    /// (worker outgoing), and `step` drains every client's traffic, so
    /// injections from different clients genuinely overlap on the wire.
    clients: Vec<NodeRuntime>,
    /// `None` once shut down (threads joined).
    cluster: Option<ThreadCluster>,
    /// Delivery counters captured at shutdown so `metrics` stays meaningful.
    final_metrics: tc_simnet::ThreadMetrics,
    servers: usize,
    am_registry: AmRegistry,
    errors: Vec<CoreError>,
    next_token: u64,
    tuning: ThreadTuning,
    /// Chaos-mode state (fault session + client reliability); `None` keeps
    /// the lossless fast path.
    chaos: Option<DriverChaos>,
    /// Transport-clock origin ([`Transport::now_nanos`] measures from here);
    /// shared with the reliability layer's timestamps in chaos mode.
    epoch: Instant,
    /// Since when `step` has seen zero external traffic while reliability
    /// frames stay unacked (chaos mode).  Bounds how long outstanding
    /// retransmissions can keep the driver reporting "busy" — a frame that
    /// can never be acked (e.g. a dead node thread) must eventually let
    /// waits time out instead of spinning forever.
    stalled_since: Option<Instant>,
    /// Reusable per-client staging flags for `step`'s batch fast path.
    staged_scratch: Vec<bool>,
}

impl std::fmt::Debug for ThreadTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadTransport")
            .field("clients", &self.clients.len())
            .field("servers", &self.servers)
            .field("errors", &self.errors.len())
            .finish()
    }
}

impl ThreadTransport {
    /// Start a backend with one driver-side client (rank 0) and `servers`
    /// threaded server nodes (ranks 1..=servers).
    pub fn new(servers: usize, client_triple: TargetTriple, server_triple: TargetTriple) -> Self {
        Self::with_opt(servers, client_triple, server_triple, OptLevel::O2)
    }

    /// Constructor with default tuning, one client and no fault plan.
    pub fn with_opt(
        servers: usize,
        client_triple: TargetTriple,
        server_triple: TargetTriple,
        opt_level: OptLevel,
    ) -> Self {
        Self::with_config(
            1,
            servers,
            client_triple,
            server_triple,
            opt_level,
            ThreadTuning::default(),
            None,
            None,
        )
    }

    /// Full-control constructor used by the cluster builder: `clients`
    /// driver-side runtimes (ranks `0..clients`), `servers` threaded server
    /// nodes (ranks `clients..clients+servers`), scheduling tunables plus an
    /// optional fault plan.  With a plan installed, every data-plane
    /// envelope passes the chaos engine's envelope filter and travels over
    /// the reliable-delivery layer (sequence numbers, cumulative acks,
    /// retransmission, dedup) — with one independent sequence space per
    /// (client, server) link.
    #[allow(clippy::too_many_arguments)]
    pub fn with_config(
        clients: usize,
        servers: usize,
        client_triple: TargetTriple,
        server_triple: TargetTriple,
        opt_level: OptLevel,
        tuning: ThreadTuning,
        fault_plan: Option<FaultPlan>,
        rel_config: Option<RelConfig>,
    ) -> Self {
        let clients = clients.max(1);
        let total = (servers + clients) as u32;
        let am_registry: AmRegistry = Arc::new(Mutex::new(Vec::new()));
        let registry_for_nodes = Arc::clone(&am_registry);

        let epoch = Instant::now();
        let rel_cfg = rel_config.unwrap_or_else(RelConfig::threads_default);
        let chaos = fault_plan.map(|plan| DriverChaos {
            session: ChaosSession::new(plan),
            rels: (0..clients).map(|_| ReliableSet::new(rel_cfg)).collect(),
            table: Arc::new(RelTable::new(servers + clients)),
            epoch,
            last_tick: Instant::now(),
            tick: Duration::from_nanos(rel_cfg.rto / 2),
            rto_max: rel_cfg.rto_max,
        });

        let mut config = ThreadConfig {
            max_batch: tuning.node_batch,
            ..ThreadConfig::default()
        };
        let node_chaos = chaos.as_ref().map(|c| {
            config.tick = Some(c.tick);
            config.filter = Some(chaos_filter(c.session.clone(), clients));
            (Arc::clone(&c.table), c.epoch)
        });

        let cluster = ThreadCluster::start_with_config(servers, config, move |thread_id| {
            let rank = (thread_id + clients) as u32;
            ServerNode {
                runtime: NodeRuntime::with_opt_level(
                    WorkerAddr(rank),
                    total,
                    server_triple,
                    opt_level,
                ),
                clients,
                am_registry: Arc::clone(&registry_for_nodes),
                am_applied: 0,
                rel: node_chaos.as_ref().map(|(table, epoch)| NodeRel {
                    set: ReliableSet::new(rel_cfg),
                    table: Arc::clone(table),
                    rank: rank as usize,
                    epoch: *epoch,
                }),
            }
        });
        ThreadTransport {
            clients: (0..clients)
                .map(|c| {
                    NodeRuntime::with_opt_level(
                        WorkerAddr(c as u32),
                        total,
                        client_triple,
                        opt_level,
                    )
                })
                .collect(),
            cluster: Some(cluster),
            final_metrics: tc_simnet::ThreadMetrics::default(),
            servers,
            am_registry,
            errors: Vec::new(),
            next_token: 1,
            tuning,
            chaos,
            epoch,
            stalled_since: None,
            staged_scratch: Vec::new(),
        }
    }

    /// Snapshot of the injected-fault counters (chaos mode only).
    pub fn chaos_stats(&self) -> Option<ChaosStats> {
        self.chaos.as_ref().map(|c| c.session.stats())
    }

    /// Reliability counters of one rank (chaos mode only).
    pub fn rel_metrics(&self, rank: usize) -> Option<RelMetrics> {
        self.chaos.as_ref().and_then(|c| c.table.snapshot(rank))
    }

    /// Errors reported by server nodes (or transport-level decode failures).
    pub fn errors(&self) -> &[CoreError] {
        &self.errors
    }

    /// Handle one external envelope on the driver side.  The envelope's
    /// `to` field names the external port, i.e. the client rank it was
    /// addressed to.
    fn handle_external(&mut self, env: Envelope) {
        let clients = self.clients.len();
        match env.tag {
            wire::TAG_OP => match wire::decode_op_vectored(&env.data, &env.payload) {
                Ok(msg) => self.deliver_to_client(msg),
                Err(e) => self.errors.push(e),
            },
            wire::TAG_ROP => {
                let src = rank_of(clients, env.from);
                let port = rank_of(clients, env.to);
                let (seq, ack, head) = match wire::decode_rel_head(&env.data) {
                    Ok(parts) => parts,
                    Err(e) => {
                        self.errors.push(e);
                        return;
                    }
                };
                let Some(chaos) = &mut self.chaos else {
                    self.errors.push(CoreError::Transport(
                        "reliable envelope without a fault plan".into(),
                    ));
                    return;
                };
                if port >= chaos.rels.len() {
                    self.errors.push(CoreError::Transport(format!(
                        "reliable envelope addressed to unknown client port {port}"
                    )));
                    return;
                }
                let now = chaos.epoch.elapsed().as_nanos() as u64;
                let out = chaos.rels[port].on_data(src as u32, seq, ack, (head, env.payload), now);
                chaos.publish(port);
                if let Some(cluster) = &self.cluster {
                    let _ = cluster.send_from_port(
                        port,
                        env.from,
                        wire::TAG_ACK,
                        wire::encode_ack(out.ack),
                    );
                }
                let mut ops = Vec::new();
                for (h, p) in out.deliver {
                    match wire::decode_op_vectored(&h, &p) {
                        Ok(msg) => ops.push(msg),
                        Err(e) => self.errors.push(e),
                    }
                }
                for msg in ops {
                    self.deliver_to_client(msg);
                }
            }
            wire::TAG_ACK => {
                let port = rank_of(clients, env.to);
                if let Ok(ack) = wire::decode_ack(&env.data) {
                    if let Some(chaos) = &mut self.chaos {
                        if port < chaos.rels.len() {
                            let now = chaos.epoch.elapsed().as_nanos() as u64;
                            chaos.rels[port].on_ack(rank_of(clients, env.from) as u32, ack, now);
                            chaos.publish(port);
                        }
                    }
                }
            }
            wire::TAG_ERROR => {
                self.errors.push(CoreError::Transport(
                    String::from_utf8_lossy(&env.data).into_owned(),
                ));
            }
            // Stale control replies (from a timed-out request) are dropped;
            // live ones are intercepted by `control_roundtrip` before this.
            _ => {}
        }
    }

    /// Deliver one in-order fabric operation to its destination client
    /// runtime (the op head carries the true destination rank) and flush
    /// anything it posted in response.
    fn deliver_to_client(&mut self, msg: tc_ucx::OutgoingMessage) {
        let dst = msg.dst.index();
        if dst >= self.clients.len() {
            self.errors.push(CoreError::Transport(format!(
                "driver received an operation for non-client rank {dst}"
            )));
            return;
        }
        self.clients[dst].deliver(msg);
        self.drain_client(dst);
    }

    /// Poll everything delivered to client `c`'s runtime and flush whatever
    /// it posted in response (e.g. GET replies served from client memory).
    fn drain_client(&mut self, c: usize) {
        for outcome in self.clients[c].poll(usize::MAX) {
            if let Err(e) = outcome {
                self.errors.push(e);
            }
        }
        let _ = self.dispatch_client_outgoing(c);
    }

    /// Run every client's retransmission timer if the tick cadence elapsed.
    fn client_tick(&mut self) {
        let clients = self.clients.len();
        let Some(cluster) = &self.cluster else {
            return;
        };
        let Some(chaos) = &mut self.chaos else {
            return;
        };
        if chaos.last_tick.elapsed() < chaos.tick {
            return;
        }
        chaos.last_tick = Instant::now();
        let now = chaos.epoch.elapsed().as_nanos() as u64;
        for c in 0..chaos.rels.len() {
            for f in chaos.rels[c].tick(now) {
                driver_transmit(
                    cluster,
                    clients,
                    c,
                    f.peer as usize,
                    f.seq,
                    f.ack,
                    &f.m.0,
                    f.m.1,
                );
            }
            chaos.publish(c);
        }
    }

    /// Move everything client `origin` posted into the threaded fabric,
    /// looping until the outgoing queues are quiescent.  Client-to-client
    /// traffic (including client-to-self) is delivered directly on the
    /// driver thread — all client runtimes live here — and may post
    /// follow-on operations (GET replies, result writes) that go out in the
    /// same flush, possibly from a *different* client than the origin.
    fn dispatch_client_outgoing(&mut self, origin: usize) -> Result<()> {
        if self.cluster.is_none() {
            return Err(CoreError::Transport("thread transport is shut down".into()));
        };
        let clients = self.clients.len();
        let mut dirty = vec![origin];
        while let Some(c) = dirty.pop() {
            loop {
                let outgoing = self.clients[c].take_outgoing();
                if outgoing.is_empty() {
                    break;
                }
                for msg in outgoing {
                    let dst = msg.dst.index();
                    if dst < clients {
                        // Client-to-client delivery: execute locally on the
                        // driver thread (loopback-class, like the simulated
                        // backend's self-delivery — never faulted).
                        self.clients[dst].deliver(msg);
                        for outcome in self.clients[dst].poll(usize::MAX) {
                            if let Err(e) = outcome {
                                self.errors.push(e);
                            }
                        }
                        if dst != c && !dirty.contains(&dst) {
                            dirty.push(dst);
                        }
                        continue;
                    }
                    // Thread node ids are rank - clients.  Drops (unknown
                    // rank, stopped node) are recorded in the cluster's
                    // counters and show up in the transport metrics,
                    // mirroring the fabric's lossy-but-accounted model.
                    let cluster = self.cluster.as_ref().expect("checked above");
                    let (head, payload) = wire::encode_op_vectored(&msg);
                    match &mut self.chaos {
                        None => {
                            let _ = cluster.send_vectored_from_port(
                                c,
                                dst - clients,
                                wire::TAG_OP,
                                head,
                                payload,
                            );
                        }
                        Some(chaos) if dst < clients + self.servers => {
                            let now = chaos.epoch.elapsed().as_nanos() as u64;
                            let (seq, ack) = chaos.rels[c].send(
                                dst as u32,
                                (head.clone(), payload.clone()),
                                now,
                            );
                            driver_transmit(cluster, clients, c, dst, seq, ack, &head, payload);
                        }
                        Some(_) => {
                            // Misaddressed in chaos mode: skip reliability (it
                            // would retransmit forever) and let the fabric
                            // count the drop, as in the lossless path.
                            let _ = cluster.send_vectored_from_port(
                                c,
                                dst - clients,
                                wire::TAG_OP,
                                head,
                                payload,
                            );
                        }
                    }
                }
            }
            if let Some(chaos) = &self.chaos {
                chaos.publish(c);
            }
        }
        Ok(())
    }

    /// Issue a control request to server `rank` and wait for its tokened
    /// reply, processing data-plane traffic that arrives in between.
    fn control_roundtrip(
        &mut self,
        rank: usize,
        request_tag: u64,
        reply_tag: u64,
        body: &[u8],
    ) -> Result<Vec<u8>> {
        let clients = self.clients.len();
        if rank < clients || rank >= clients + self.servers {
            return Err(CoreError::Transport(format!(
                "control request addressed to invalid rank {rank} ({}..={} expected)",
                clients,
                clients + self.servers - 1
            )));
        }
        let token = self.next_token;
        self.next_token += 1;
        let status = match &self.cluster {
            Some(cluster) => cluster.send(
                rank - clients,
                request_tag,
                wire::encode_control(token, body),
            ),
            None => return Err(CoreError::Transport("thread transport is shut down".into())),
        };
        if !status.is_delivered() {
            return Err(CoreError::Transport(format!(
                "control request to rank {rank} not delivered: {status:?}"
            )));
        }
        let deadline = Instant::now() + self.tuning.control_timeout;
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(CoreError::WaitTimeout {
                    what: format!("control reply (tag {reply_tag}) from rank {rank}"),
                });
            }
            let env = match &self.cluster {
                Some(cluster) => cluster.recv_external(remaining),
                None => return Err(CoreError::Transport("thread transport is shut down".into())),
            };
            let Some(env) = env else {
                continue;
            };
            if env.tag == reply_tag && env.from == rank - clients {
                if let Ok((reply_token, reply_body)) = wire::decode_control(&env.data) {
                    if reply_token == token {
                        return Ok(reply_body.to_vec());
                    }
                    continue; // stale reply from an abandoned request
                }
            }
            self.handle_external(env);
        }
    }
}

impl Transport for ThreadTransport {
    fn backend_name(&self) -> &'static str {
        "threads"
    }

    fn link_health(&self) -> Vec<(u32, LinkHealth)> {
        let Some(chaos) = &self.chaos else {
            return Vec::new();
        };
        let clients = self.clients.len();
        let mut rows = Vec::new();
        // Driver-side clients report every link from their own estimator;
        // server nodes publish their most-stressed link through the shared
        // table (one row per rank — full per-link detail would need a
        // variable-size shared structure).
        for (c, rel) in chaos.rels.iter().enumerate() {
            for h in rel.link_health() {
                rows.push((c as u32, h));
            }
        }
        for rank in clients..clients + self.servers {
            if let Some(h) = chaos.table.health_snapshot(rank) {
                rows.push((rank as u32, h));
            }
        }
        rows
    }

    fn node_count(&self) -> usize {
        self.servers + self.clients.len()
    }

    fn client_count(&self) -> usize {
        self.clients.len()
    }

    fn client(&self, id: ClientId) -> &NodeRuntime {
        assert!(id.0 < self.clients.len(), "no client with id {id}");
        &self.clients[id.0]
    }

    fn client_mut(&mut self, id: ClientId) -> &mut NodeRuntime {
        assert!(id.0 < self.clients.len(), "no client with id {id}");
        &mut self.clients[id.0]
    }

    fn deploy_am(&mut self, name: &str, handler: NativeAmHandler) -> Result<()> {
        // Clients apply immediately; servers catch up (in registry order,
        // hence with identical handler ids) before their next message.
        for client in &mut self.clients {
            client.deploy_am_handler(name.to_string(), handler.clone());
        }
        self.am_registry
            .lock()
            .map_err(|_| CoreError::Transport("AM registry poisoned".into()))?
            .push((name.to_string(), handler));
        Ok(())
    }

    fn flush_client(&mut self, id: ClientId) -> Result<()> {
        if id.0 >= self.clients.len() {
            return Err(CoreError::Transport(format!("no client with id {id}")));
        }
        self.dispatch_client_outgoing(id.0)
    }

    fn step(&mut self) -> Result<bool> {
        let busy_deadline = Instant::now() + self.tuning.busy_step_timeout;
        let step_timeout = self.tuning.step_timeout;
        let step_batch = self.tuning.step_batch;
        loop {
            // The retransmission timer must run even while traffic flows.
            self.client_tick();
            let Some(cluster) = &self.cluster else {
                return Ok(false);
            };
            match cluster.recv_external(step_timeout) {
                Some(env) => {
                    // Drain the burst behind the first envelope: one park,
                    // one batch of work.
                    let mut batch = vec![env];
                    while batch.len() < step_batch {
                        match cluster.try_recv_external() {
                            Some(env) => batch.push(env),
                            None => break,
                        }
                    }
                    self.stalled_since = None;
                    // Fast path for the lossless data plane: decode and
                    // deliver the whole burst into the destination client
                    // runtimes, then poll/flush each staged client once — a
                    // deep pipeline pays the poll and outgoing-dispatch
                    // overhead per batch, not per reply.  All clients'
                    // replies ride the same burst, so injection streams from
                    // several clients genuinely overlap on the wire.
                    let nclients = self.clients.len();
                    // Reusable per-client staging flags (the scratch lives on
                    // the transport so the hot loop never allocates).
                    let mut staged = std::mem::take(&mut self.staged_scratch);
                    staged.clear();
                    staged.resize(nclients, false);
                    let mut any_staged = false;
                    for env in batch {
                        if env.tag == wire::TAG_OP {
                            match wire::decode_op_vectored(&env.data, &env.payload) {
                                Ok(msg) if msg.dst.index() < nclients => {
                                    let dst = msg.dst.index();
                                    self.clients[dst].deliver(msg);
                                    staged[dst] = true;
                                    any_staged = true;
                                }
                                Ok(msg) => self.errors.push(CoreError::Transport(format!(
                                    "driver received an operation for non-client rank {}",
                                    msg.dst.index()
                                ))),
                                Err(e) => self.errors.push(e),
                            }
                            continue;
                        }
                        // Rare tags (reliable frames, acks, errors) keep the
                        // one-at-a-time path; flush staged data-plane ops
                        // first so arrival order is preserved.
                        if any_staged {
                            for (c, s) in staged.iter_mut().enumerate() {
                                if std::mem::take(s) {
                                    self.drain_client(c);
                                }
                            }
                            any_staged = false;
                        }
                        self.handle_external(env);
                    }
                    if any_staged {
                        for (c, s) in staged.iter_mut().enumerate() {
                            if std::mem::take(s) {
                                self.drain_client(c);
                            }
                        }
                    }
                    self.staged_scratch = staged;
                    return Ok(true);
                }
                None => {
                    // recv_timeout parks and wakes on enqueue, so reaching
                    // here means step_timeout of genuine silence.  Only call
                    // it idleness when no node-bound message is queued or
                    // mid-processing — and, in chaos mode, no frame anywhere
                    // awaits an ack (a partitioned link with retransmits
                    // pending is *busy*, not idle) — otherwise keep waiting
                    // (bounded).
                    let unacked = self
                        .chaos
                        .as_ref()
                        .map(|c| c.table.total_unacked())
                        .unwrap_or(0);
                    if unacked > 0 {
                        // Reliability work is outstanding: report progress
                        // so waits keep driving the retransmission timer —
                        // but bound the total silence.  A frame that stays
                        // unacked through many busy budgets with zero
                        // traffic (dead node thread, unhealable partition)
                        // must not wedge idleness detection forever.
                        //
                        // The bound must out-wait the retransmission
                        // machinery itself: with an armed RTO deadline, a
                        // healthy link can legitimately stay silent for a
                        // full backed-off round (up to `rto_max`), so a
                        // horizon shorter than a few such rounds would
                        // declare `WaitTimeout` on traffic the reliable
                        // layer was about to recover (the pre-fix bug when
                        // `busy_step_timeout` was tuned below the RTO
                        // backoff).
                        let now = Instant::now();
                        let since = *self.stalled_since.get_or_insert(now);
                        let rel_horizon = self
                            .chaos
                            .as_ref()
                            .map(|c| Duration::from_nanos(c.rto_max) * 4)
                            .unwrap_or(Duration::ZERO);
                        let horizon = (self.tuning.busy_step_timeout * 10).max(rel_horizon);
                        if now.duration_since(since) < horizon {
                            return Ok(true);
                        }
                        return Ok(false);
                    }
                    self.stalled_since = None;
                    if cluster.pending_messages() == 0 || Instant::now() >= busy_deadline {
                        return Ok(false);
                    }
                }
            }
        }
    }

    fn idle_grace(&self) -> u32 {
        self.tuning.idle_grace
    }

    fn take_completions(&mut self, id: ClientId) -> Vec<Completion> {
        assert!(id.0 < self.clients.len(), "no client with id {id}");
        self.clients[id.0].take_completions()
    }

    fn now_nanos(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    fn unacked_total(&self) -> u64 {
        self.chaos
            .as_ref()
            .map(|c| c.table.total_unacked())
            .unwrap_or(0)
    }

    fn next_rel_deadline(&self) -> Option<u64> {
        self.chaos
            .as_ref()
            .and_then(|c| c.table.earliest_deadline())
    }

    fn read_memory(&mut self, rank: usize, addr: u64, len: usize) -> Result<Vec<u8>> {
        if rank < self.clients.len() {
            let mut buf = vec![0u8; len];
            self.clients[rank]
                .memory
                .read(addr, &mut buf)
                .map_err(|e| CoreError::Transport(e.to_string()))?;
            return Ok(buf);
        }
        let mut body = Vec::with_capacity(16);
        body.extend_from_slice(&addr.to_le_bytes());
        body.extend_from_slice(&(len as u64).to_le_bytes());
        let reply = self.control_roundtrip(rank, wire::TAG_PEEK, wire::TAG_PEEK_REPLY, &body)?;
        if reply.len() != len {
            return Err(CoreError::Transport(format!(
                "peek of {len} bytes at {addr:#x} on rank {rank} failed"
            )));
        }
        Ok(reply)
    }

    fn write_memory(&mut self, rank: usize, addr: u64, data: &[u8]) -> Result<()> {
        if rank < self.clients.len() {
            return self.clients[rank]
                .memory
                .write(addr, data)
                .map_err(|e| CoreError::Transport(e.to_string()));
        }
        let mut body = Vec::with_capacity(8 + data.len());
        body.extend_from_slice(&addr.to_le_bytes());
        body.extend_from_slice(data);
        let reply = self.control_roundtrip(rank, wire::TAG_POKE, wire::TAG_POKE_ACK, &body)?;
        if reply != [1] {
            return Err(CoreError::Transport(format!(
                "poke of {} bytes at {addr:#x} on rank {rank} failed",
                data.len()
            )));
        }
        Ok(())
    }

    fn node_stats(&mut self, rank: usize) -> Result<RuntimeStats> {
        if rank < self.clients.len() {
            return Ok(self.clients[rank].stats);
        }
        let reply = self.control_roundtrip(rank, wire::TAG_STATS, wire::TAG_STATS_REPLY, &[])?;
        wire::decode_stats(&reply)
    }

    fn metrics(&self) -> TransportMetrics {
        let m = self
            .cluster
            .as_ref()
            .map(|c| c.metrics())
            .unwrap_or(self.final_metrics);
        let (retransmits, dup_drops) = self
            .chaos
            .as_ref()
            .map(|c| c.table.totals())
            .unwrap_or((0, 0));
        TransportMetrics {
            messages_delivered: m.delivered,
            messages_dropped: m.dropped(),
            bytes_sent: self.clients.iter().map(|c| c.stats.bytes_sent).sum(),
            retransmits,
            dup_drops,
            faults_injected: self
                .chaos
                .as_ref()
                .map(|c| c.session.stats().total_injected())
                .unwrap_or(0),
        }
    }

    fn node_reliability(&self, rank: usize) -> Option<RelMetrics> {
        self.rel_metrics(rank)
    }

    fn chaos_stats(&self) -> Option<ChaosStats> {
        ThreadTransport::chaos_stats(self)
    }

    fn shutdown(&mut self) {
        if let Some(cluster) = self.cluster.take() {
            self.final_metrics = cluster.metrics();
            cluster.shutdown();
        }
    }
}

impl Drop for ThreadTransport {
    fn drop(&mut self) {
        self.shutdown();
    }
}
