//! The real-concurrency backend: server runtimes on OS threads, the client
//! runtime on the driving thread, fabric operations as tagged envelopes over
//! channels.
//!
//! No virtual time is involved — this backend exists to show that the
//! framework's state machines (auto-registration, sender-side caching,
//! recursive forwarding, result return) are correct under genuine
//! parallelism.  Server rank `r` (1-based) runs as thread node `r - 1` of a
//! [`tc_simnet::ThreadCluster`]; the client (rank 0) stays on the driver
//! thread so sends and completion waits need no extra synchronisation.
//!
//! Active-Message deployment after startup works through a shared,
//! append-only handler registry: every node applies new registry entries (in
//! order) before handling each message, so `AmHandlerId`s agree cluster-wide
//! without shipping closures through channels.

use super::{wire, Transport, TransportMetrics};
use crate::error::{CoreError, Result};
use crate::metrics::RuntimeStats;
use crate::runtime::{Completion, NativeAmHandler, NodeRuntime};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use tc_bitir::TargetTriple;
use tc_jit::{Memory, OptLevel};
use tc_simnet::{Envelope, NodeCtx, ThreadCluster, ThreadedNode};
use tc_ucx::WorkerAddr;

/// Shared, append-only list of predeployed AM handlers.  Deploy order defines
/// the cluster-wide handler ids.
type AmRegistry = Arc<Mutex<Vec<(String, NativeAmHandler)>>>;

/// How long one driver `step` parks waiting for traffic before checking the
/// cluster's pending-message counter.  The park wakes immediately when a
/// node enqueues an external message (mpsc `recv_timeout`), so this bounds
/// *idle-detection* latency only, not delivery latency.
const STEP_TIMEOUT: Duration = Duration::from_millis(20);
/// Upper bound one `step` keeps waiting while node threads are verifiably
/// busy (messages enqueued or mid-processing) without producing external
/// traffic.  Guards against a runaway ifunc wedging the driver forever.
const BUSY_STEP_TIMEOUT: Duration = Duration::from_secs(1);
/// Most external envelopes drained per `step` after a wakeup (batch drain:
/// one park, many messages).
const STEP_BATCH: usize = 128;
/// How long a control-plane round trip (peek/poke/stats) may take.
const CONTROL_TIMEOUT: Duration = Duration::from_secs(10);
/// Consecutive idle steps before waits give up.  A step only reports idle
/// after `STEP_TIMEOUT` of silence with zero pending node-bound messages,
/// so two suffice: the second covers the one-step race where a node
/// enqueued an external message right as the first park timed out.  An
/// idle cluster is detected (and can shut down) in ~40 ms instead of the
/// former ~0.5 s polling budget.
const IDLE_GRACE: u32 = 2;

/// A server node: owns a full Three-Chains runtime and speaks the transport's
/// wire protocol.
struct ServerNode {
    runtime: NodeRuntime,
    am_registry: AmRegistry,
    am_applied: usize,
}

impl ServerNode {
    fn sync_am(&mut self) {
        let registry = self.am_registry.lock().expect("AM registry poisoned");
        for (name, handler) in registry.iter().skip(self.am_applied) {
            self.runtime
                .deploy_am_handler(name.clone(), handler.clone());
        }
        self.am_applied = registry.len();
    }

    fn route_outgoing(&mut self, ctx: &NodeCtx) {
        for msg in self.runtime.take_outgoing() {
            let dst = msg.dst.index();
            // Scatter-gather: the head is pooled, large payloads ship as a
            // shared view (no copy).  Drops are counted by the ThreadCluster's
            // delivery counters and surfaced through the transport metrics.
            let (head, payload) = wire::encode_op_vectored(&msg);
            let _ = if dst == 0 {
                ctx.send_external_vectored(wire::TAG_OP, head, payload)
            } else {
                ctx.send_vectored(dst - 1, wire::TAG_OP, head, payload)
            };
        }
    }
}

impl ThreadedNode for ServerNode {
    /// One wakeup's worth of envelopes.  Consecutive data-plane messages are
    /// delivered together and polled/flushed once, so a burst of N ifunc
    /// frames pays for one poll loop and one outgoing flush instead of N.
    /// Control messages are handled strictly in FIFO position (the control
    /// plane doubles as a barrier behind the data plane).
    fn on_batch(&mut self, msgs: Vec<Envelope>, ctx: &NodeCtx) {
        self.sync_am();
        let mut pending_ops = false;
        for msg in msgs {
            if msg.tag == wire::TAG_OP {
                match wire::decode_op_vectored(&msg.data, &msg.payload) {
                    Ok(op) => {
                        self.runtime.deliver(op);
                        pending_ops = true;
                    }
                    Err(e) => {
                        let _ = ctx.send_external(wire::TAG_ERROR, e.to_string().into_bytes());
                    }
                }
                continue;
            }
            if pending_ops {
                self.process_delivered(ctx);
                pending_ops = false;
            }
            self.on_control(msg, ctx);
        }
        if pending_ops {
            self.process_delivered(ctx);
        }
    }

    fn on_message(&mut self, msg: Envelope, ctx: &NodeCtx) {
        self.on_batch(vec![msg], ctx);
    }
}

impl ServerNode {
    /// Poll every delivered operation and flush whatever the runtime posted.
    fn process_delivered(&mut self, ctx: &NodeCtx) {
        for outcome in self.runtime.poll(usize::MAX) {
            if let Err(e) = outcome {
                let _ = ctx.send_external(wire::TAG_ERROR, e.to_string().into_bytes());
            }
        }
        self.route_outgoing(ctx);
    }

    /// Handle one control-plane envelope.
    fn on_control(&mut self, msg: Envelope, ctx: &NodeCtx) {
        match msg.tag {
            wire::TAG_PEEK => {
                let Ok((token, body)) = wire::decode_control(&msg.data) else {
                    return;
                };
                if body.len() != 16 {
                    return;
                }
                let addr = u64::from_le_bytes(body[0..8].try_into().unwrap());
                let len = u64::from_le_bytes(body[8..16].try_into().unwrap()) as usize;
                let mut buf = vec![0u8; len];
                let reply = match self.runtime.memory.read(addr, &mut buf) {
                    Ok(()) => wire::encode_control(token, &buf),
                    Err(_) => wire::encode_control(token, &[]),
                };
                let _ = ctx.send_external(wire::TAG_PEEK_REPLY, reply);
            }
            wire::TAG_POKE => {
                let Ok((token, body)) = wire::decode_control(&msg.data) else {
                    return;
                };
                if body.len() < 8 {
                    return;
                }
                let addr = u64::from_le_bytes(body[0..8].try_into().unwrap());
                let ok = self.runtime.memory.write(addr, &body[8..]).is_ok();
                let _ =
                    ctx.send_external(wire::TAG_POKE_ACK, wire::encode_control(token, &[ok as u8]));
            }
            wire::TAG_STATS => {
                let Ok((token, _)) = wire::decode_control(&msg.data) else {
                    return;
                };
                let reply = wire::encode_control(token, &wire::encode_stats(&self.runtime.stats));
                let _ = ctx.send_external(wire::TAG_STATS_REPLY, reply);
            }
            _ => {}
        }
    }
}

/// The real-concurrency cluster backend (threads + channels, wall-clock time).
pub struct ThreadTransport {
    client: NodeRuntime,
    /// `None` once shut down (threads joined).
    cluster: Option<ThreadCluster>,
    /// Delivery counters captured at shutdown so `metrics` stays meaningful.
    final_metrics: tc_simnet::ThreadMetrics,
    servers: usize,
    am_registry: AmRegistry,
    errors: Vec<CoreError>,
    next_token: u64,
}

impl std::fmt::Debug for ThreadTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadTransport")
            .field("servers", &self.servers)
            .field("client", &self.client.node_id())
            .field("errors", &self.errors.len())
            .finish()
    }
}

impl ThreadTransport {
    /// Start a backend with one driver-side client (rank 0) and `servers`
    /// threaded server nodes (ranks 1..=servers).
    pub fn new(servers: usize, client_triple: TargetTriple, server_triple: TargetTriple) -> Self {
        Self::with_opt(servers, client_triple, server_triple, OptLevel::O2)
    }

    /// Full-control constructor used by the cluster builder.
    pub fn with_opt(
        servers: usize,
        client_triple: TargetTriple,
        server_triple: TargetTriple,
        opt_level: OptLevel,
    ) -> Self {
        let total = (servers + 1) as u32;
        let am_registry: AmRegistry = Arc::new(Mutex::new(Vec::new()));
        let registry_for_nodes = Arc::clone(&am_registry);
        let cluster = ThreadCluster::start(servers, move |thread_id| {
            let rank = thread_id as u32 + 1;
            ServerNode {
                runtime: NodeRuntime::with_opt_level(
                    WorkerAddr(rank),
                    total,
                    server_triple,
                    opt_level,
                ),
                am_registry: Arc::clone(&registry_for_nodes),
                am_applied: 0,
            }
        });
        ThreadTransport {
            client: NodeRuntime::with_opt_level(WorkerAddr(0), total, client_triple, opt_level),
            cluster: Some(cluster),
            final_metrics: tc_simnet::ThreadMetrics::default(),
            servers,
            am_registry,
            errors: Vec::new(),
            next_token: 1,
        }
    }

    /// Errors reported by server nodes (or transport-level decode failures).
    pub fn errors(&self) -> &[CoreError] {
        &self.errors
    }

    /// Handle one external envelope on the driver side.
    fn handle_external(&mut self, env: Envelope) {
        match env.tag {
            wire::TAG_OP => match wire::decode_op_vectored(&env.data, &env.payload) {
                Ok(msg) => {
                    self.client.deliver(msg);
                    for outcome in self.client.poll(usize::MAX) {
                        if let Err(e) = outcome {
                            self.errors.push(e);
                        }
                    }
                    // The client may respond (e.g. serve a GET against its own
                    // memory); those ops go back out immediately.
                    let _ = self.dispatch_client_outgoing();
                }
                Err(e) => self.errors.push(e),
            },
            wire::TAG_ERROR => {
                self.errors.push(CoreError::Transport(
                    String::from_utf8_lossy(&env.data).into_owned(),
                ));
            }
            // Stale control replies (from a timed-out request) are dropped;
            // live ones are intercepted by `control_roundtrip` before this.
            _ => {}
        }
    }

    /// Move everything the client posted into the threaded fabric, looping
    /// until the outgoing queue is quiescent (client-to-self deliveries can
    /// post follow-on operations — GET replies, result writes — that must go
    /// out in the same flush).
    fn dispatch_client_outgoing(&mut self) -> Result<()> {
        let Some(cluster) = &self.cluster else {
            return Err(CoreError::Transport("thread transport is shut down".into()));
        };
        loop {
            let outgoing = self.client.take_outgoing();
            if outgoing.is_empty() {
                return Ok(());
            }
            for msg in outgoing {
                let dst = msg.dst.index();
                if dst == 0 {
                    // Client-to-self delivery: execute locally.
                    self.client.deliver(msg);
                    for outcome in self.client.poll(usize::MAX) {
                        if let Err(e) = outcome {
                            self.errors.push(e);
                        }
                    }
                    continue;
                }
                // Thread node ids are rank - 1.  Drops (unknown rank, stopped
                // node) are recorded in the cluster's counters and show up in
                // the transport metrics, mirroring the fabric's
                // lossy-but-accounted model.
                let (head, payload) = wire::encode_op_vectored(&msg);
                let _ = cluster.send_vectored(dst - 1, wire::TAG_OP, head, payload);
            }
        }
    }

    /// Issue a control request to server `rank` and wait for its tokened
    /// reply, processing data-plane traffic that arrives in between.
    fn control_roundtrip(
        &mut self,
        rank: usize,
        request_tag: u64,
        reply_tag: u64,
        body: &[u8],
    ) -> Result<Vec<u8>> {
        if rank == 0 || rank > self.servers {
            return Err(CoreError::Transport(format!(
                "control request addressed to invalid rank {rank} (1..={} expected)",
                self.servers
            )));
        }
        let token = self.next_token;
        self.next_token += 1;
        let status = match &self.cluster {
            Some(cluster) => cluster.send(rank - 1, request_tag, wire::encode_control(token, body)),
            None => return Err(CoreError::Transport("thread transport is shut down".into())),
        };
        if !status.is_delivered() {
            return Err(CoreError::Transport(format!(
                "control request to rank {rank} not delivered: {status:?}"
            )));
        }
        let deadline = Instant::now() + CONTROL_TIMEOUT;
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(CoreError::WaitTimeout {
                    what: format!("control reply (tag {reply_tag}) from rank {rank}"),
                });
            }
            let env = match &self.cluster {
                Some(cluster) => cluster.recv_external(remaining),
                None => return Err(CoreError::Transport("thread transport is shut down".into())),
            };
            let Some(env) = env else {
                continue;
            };
            if env.tag == reply_tag && env.from == rank - 1 {
                if let Ok((reply_token, reply_body)) = wire::decode_control(&env.data) {
                    if reply_token == token {
                        return Ok(reply_body.to_vec());
                    }
                    continue; // stale reply from an abandoned request
                }
            }
            self.handle_external(env);
        }
    }
}

impl Transport for ThreadTransport {
    fn backend_name(&self) -> &'static str {
        "threads"
    }

    fn node_count(&self) -> usize {
        self.servers + 1
    }

    fn client(&self) -> &NodeRuntime {
        &self.client
    }

    fn client_mut(&mut self) -> &mut NodeRuntime {
        &mut self.client
    }

    fn deploy_am(&mut self, name: &str, handler: NativeAmHandler) -> Result<()> {
        // Client applies immediately; servers catch up (in registry order,
        // hence with identical handler ids) before their next message.
        self.client
            .deploy_am_handler(name.to_string(), handler.clone());
        self.am_registry
            .lock()
            .map_err(|_| CoreError::Transport("AM registry poisoned".into()))?
            .push((name.to_string(), handler));
        Ok(())
    }

    fn flush_client(&mut self) -> Result<()> {
        self.dispatch_client_outgoing()
    }

    fn step(&mut self) -> Result<bool> {
        let busy_deadline = Instant::now() + BUSY_STEP_TIMEOUT;
        loop {
            let Some(cluster) = &self.cluster else {
                return Ok(false);
            };
            match cluster.recv_external(STEP_TIMEOUT) {
                Some(env) => {
                    // Drain the burst behind the first envelope: one park,
                    // one batch of work.
                    let mut batch = vec![env];
                    while batch.len() < STEP_BATCH {
                        match cluster.try_recv_external() {
                            Some(env) => batch.push(env),
                            None => break,
                        }
                    }
                    for env in batch {
                        self.handle_external(env);
                    }
                    return Ok(true);
                }
                None => {
                    // recv_timeout parks and wakes on enqueue, so reaching
                    // here means STEP_TIMEOUT of genuine silence.  Only call
                    // it idleness when no node-bound message is queued or
                    // mid-processing; otherwise keep waiting (bounded).
                    if cluster.pending_messages() == 0 || Instant::now() >= busy_deadline {
                        return Ok(false);
                    }
                }
            }
        }
    }

    fn idle_grace(&self) -> u32 {
        IDLE_GRACE
    }

    fn take_completions(&mut self) -> Vec<Completion> {
        self.client.take_completions()
    }

    fn read_memory(&mut self, rank: usize, addr: u64, len: usize) -> Result<Vec<u8>> {
        if rank == 0 {
            let mut buf = vec![0u8; len];
            self.client
                .memory
                .read(addr, &mut buf)
                .map_err(|e| CoreError::Transport(e.to_string()))?;
            return Ok(buf);
        }
        let mut body = Vec::with_capacity(16);
        body.extend_from_slice(&addr.to_le_bytes());
        body.extend_from_slice(&(len as u64).to_le_bytes());
        let reply = self.control_roundtrip(rank, wire::TAG_PEEK, wire::TAG_PEEK_REPLY, &body)?;
        if reply.len() != len {
            return Err(CoreError::Transport(format!(
                "peek of {len} bytes at {addr:#x} on rank {rank} failed"
            )));
        }
        Ok(reply)
    }

    fn write_memory(&mut self, rank: usize, addr: u64, data: &[u8]) -> Result<()> {
        if rank == 0 {
            return self
                .client
                .memory
                .write(addr, data)
                .map_err(|e| CoreError::Transport(e.to_string()));
        }
        let mut body = Vec::with_capacity(8 + data.len());
        body.extend_from_slice(&addr.to_le_bytes());
        body.extend_from_slice(data);
        let reply = self.control_roundtrip(rank, wire::TAG_POKE, wire::TAG_POKE_ACK, &body)?;
        if reply != [1] {
            return Err(CoreError::Transport(format!(
                "poke of {} bytes at {addr:#x} on rank {rank} failed",
                data.len()
            )));
        }
        Ok(())
    }

    fn node_stats(&mut self, rank: usize) -> Result<RuntimeStats> {
        if rank == 0 {
            return Ok(self.client.stats);
        }
        let reply = self.control_roundtrip(rank, wire::TAG_STATS, wire::TAG_STATS_REPLY, &[])?;
        wire::decode_stats(&reply)
    }

    fn metrics(&self) -> TransportMetrics {
        let m = self
            .cluster
            .as_ref()
            .map(|c| c.metrics())
            .unwrap_or(self.final_metrics);
        TransportMetrics {
            messages_delivered: m.delivered,
            messages_dropped: m.dropped(),
            bytes_sent: self.client.stats.bytes_sent,
        }
    }

    fn shutdown(&mut self) {
        if let Some(cluster) = self.cluster.take() {
            self.final_metrics = cluster.metrics();
            cluster.shutdown();
        }
    }
}

impl Drop for ThreadTransport {
    fn drop(&mut self) {
        self.shutdown();
    }
}
