//! Wire conventions of the threaded cluster backend.
//!
//! The threaded transport moves [`tc_ucx::OutgoingMessage`]s between OS
//! threads as tagged byte envelopes.  Earlier versions of the repository left
//! these conventions to each integration test (ad-hoc tag constants and
//! hand-rolled framing); they are now part of the transport layer so every
//! user of the cluster API shares one protocol.
//!
//! Envelope tags:
//!
//! * [`TAG_OP`] — an encoded fabric operation (the payload of
//!   [`encode_op`]); this is the data plane.
//! * [`TAG_PEEK`] / [`TAG_PEEK_REPLY`] — driver reads a node's memory
//!   (control plane; token-matched).
//! * [`TAG_POKE`] / [`TAG_POKE_ACK`] — driver writes a node's memory.
//! * [`TAG_STATS`] / [`TAG_STATS_REPLY`] — driver samples a node's
//!   [`RuntimeStats`].
//! * [`TAG_ERROR`] — a node reports a runtime error to the driver.

use crate::error::{CoreError, Result};
use crate::metrics::RuntimeStats;
use tc_ucx::{AmHandlerId, BufPool, Bytes, OutgoingMessage, RequestId, UcpOp, WorkerAddr};

/// Envelope tag: encoded fabric operation (data plane).
pub const TAG_OP: u64 = 1;
/// Envelope tag: driver asks a node to read memory.
pub const TAG_PEEK: u64 = 2;
/// Envelope tag: node answers a [`TAG_PEEK`].
pub const TAG_PEEK_REPLY: u64 = 3;
/// Envelope tag: driver asks a node to write memory.
pub const TAG_POKE: u64 = 4;
/// Envelope tag: node acknowledges a [`TAG_POKE`].
pub const TAG_POKE_ACK: u64 = 5;
/// Envelope tag: driver asks a node for its runtime counters.
pub const TAG_STATS: u64 = 6;
/// Envelope tag: node answers a [`TAG_STATS`].
pub const TAG_STATS_REPLY: u64 = 7;
/// Envelope tag: node reports a processing error to the driver.
pub const TAG_ERROR: u64 = 8;
/// Envelope tag: a *reliable* data-plane operation — a 16-byte reliability
/// header (`[seq u64][cumulative ack u64]`) followed by the same head bytes
/// a [`TAG_OP`] envelope carries.  Used instead of [`TAG_OP`] when a fault
/// plan is installed.
pub const TAG_ROP: u64 = 9;
/// Envelope tag: a pure cumulative ack (`[ack u64]`) for the reliable
/// delivery layer.
pub const TAG_ACK: u64 = 10;

/// Prefix an encoded op head with the reliability header, producing the
/// data segment of a [`TAG_ROP`] envelope.  (Chaos mode only — the
/// fault-free path ships the head untouched as [`TAG_OP`], so this copy
/// never lands on the zero-copy hot path.)
pub fn encode_rel_head(seq: u64, ack: u64, head: &[u8]) -> Bytes {
    tc_ucx::bytes::with_pool(|pool| {
        let mut out = pool.acquire(16 + head.len());
        out.put_u64_le(seq);
        out.put_u64_le(ack);
        out.put_slice(head);
        out.freeze(pool)
    })
}

/// Split a [`TAG_ROP`] data segment into `(seq, ack, op head)`.  The head is
/// a zero-copy sub-view.
pub fn decode_rel_head(bytes: &Bytes) -> Result<(u64, u64, Bytes)> {
    if bytes.len() < 16 {
        return Err(CoreError::Transport(
            "reliable envelope shorter than its header".into(),
        ));
    }
    let seq = u64::from_le_bytes(bytes[0..8].try_into().unwrap());
    let ack = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    Ok((seq, ack, bytes.slice(16..)))
}

/// Encode a pure cumulative ack for a [`TAG_ACK`] envelope.
pub fn encode_ack(ack: u64) -> Vec<u8> {
    ack.to_le_bytes().to_vec()
}

/// Decode a [`TAG_ACK`] payload.
pub fn decode_ack(bytes: &[u8]) -> Result<u64> {
    if bytes.len() != 8 {
        return Err(CoreError::Transport(format!(
            "ack envelope must be 8 bytes, got {}",
            bytes.len()
        )));
    }
    Ok(u64::from_le_bytes(bytes[0..8].try_into().unwrap()))
}

const OP_PUT: u8 = 0;
const OP_GET: u8 = 1;
const OP_GET_REPLY: u8 = 2;
const OP_AM: u8 = 3;
const OP_IFUNC: u8 = 4;
const OP_PUT_CONFIRM: u8 = 5;
const OP_PUT_ACK: u8 = 6;

/// Exact encoded size of a [`TAG_OP`] envelope for `msg`.
fn encoded_op_size(op: &UcpOp) -> usize {
    17 + match op {
        UcpOp::Put { data, .. } => 8 + data.len(),
        UcpOp::PutConfirm { data, .. } => 8 + data.len(),
        UcpOp::PutAck { .. } => 8,
        UcpOp::Get { .. } => 16,
        UcpOp::GetReply { data, .. } => 8 + data.len(),
        UcpOp::ActiveMessage { payload, .. } => 2 + payload.len(),
        UcpOp::IfuncFrame { bytes } => bytes.len(),
    }
}

/// Encode a fabric operation for a [`TAG_OP`] envelope into a buffer from
/// `pool`.  Steady-state sends reuse released pool slots, so the encode path
/// performs one payload copy and zero allocations.
pub fn encode_op_with(msg: &OutgoingMessage, pool: &mut BufPool) -> Bytes {
    let mut out = pool.acquire(encoded_op_size(&msg.op));
    out.put_u32_le(msg.src.0);
    out.put_u32_le(msg.dst.0);
    out.put_u64_le(msg.request.0);
    match &msg.op {
        UcpOp::Put { remote_addr, data } => {
            out.put_u8(OP_PUT);
            out.put_u64_le(*remote_addr);
            out.put_slice(data);
        }
        UcpOp::PutConfirm { remote_addr, data } => {
            out.put_u8(OP_PUT_CONFIRM);
            out.put_u64_le(*remote_addr);
            out.put_slice(data);
        }
        UcpOp::PutAck { acked } => {
            out.put_u8(OP_PUT_ACK);
            out.put_u64_le(acked.0);
        }
        UcpOp::Get { remote_addr, len } => {
            out.put_u8(OP_GET);
            out.put_u64_le(*remote_addr);
            out.put_u64_le(*len);
        }
        UcpOp::GetReply { request, data } => {
            out.put_u8(OP_GET_REPLY);
            out.put_u64_le(request.0);
            out.put_slice(data);
        }
        UcpOp::ActiveMessage { handler, payload } => {
            out.put_u8(OP_AM);
            out.put_u16_le(handler.0);
            out.put_slice(payload);
        }
        UcpOp::IfuncFrame { bytes } => {
            out.put_u8(OP_IFUNC);
            out.put_slice(bytes);
        }
    }
    out.freeze(pool)
}

/// Encode a fabric operation with this thread's encode pool.
pub fn encode_op(msg: &OutgoingMessage) -> Bytes {
    tc_ucx::bytes::with_pool(|pool| encode_op_with(msg, pool))
}

/// Payloads at or above this many bytes travel as a detached scatter-gather
/// envelope segment instead of being copied into the encoded head buffer.
/// Below it, the copy is cheaper than handling a second segment.
pub const SCATTER_THRESHOLD: usize = 512;

/// Scatter-gather encode: returns `(head, payload)` where `head` is the
/// encoded envelope minus the bulk payload and `payload` is a shared view of
/// the operation's payload bytes (empty when the operation is small or has
/// no payload).  Together with [`decode_op_vectored`] this makes large sends
/// **zero-copy**: the payload crosses the transport as a refcount, never as
/// a memcpy.  The logical wire image is `head ‖ payload`, identical to what
/// [`encode_op`] produces in one buffer.
pub fn encode_op_vectored_with(msg: &OutgoingMessage, pool: &mut BufPool) -> (Bytes, Bytes) {
    let detached = match &msg.op {
        UcpOp::Put { data, .. } if data.len() >= SCATTER_THRESHOLD => data.clone(),
        UcpOp::PutConfirm { data, .. } if data.len() >= SCATTER_THRESHOLD => data.clone(),
        UcpOp::GetReply { data, .. } if data.len() >= SCATTER_THRESHOLD => data.clone(),
        UcpOp::ActiveMessage { payload, .. } if payload.len() >= SCATTER_THRESHOLD => {
            payload.clone()
        }
        UcpOp::IfuncFrame { bytes } if bytes.len() >= SCATTER_THRESHOLD => bytes.clone(),
        _ => return (encode_op_with(msg, pool), Bytes::new()),
    };
    let mut out = pool.acquire(17 + 8);
    out.put_u32_le(msg.src.0);
    out.put_u32_le(msg.dst.0);
    out.put_u64_le(msg.request.0);
    match &msg.op {
        UcpOp::Put { remote_addr, .. } => {
            out.put_u8(OP_PUT);
            out.put_u64_le(*remote_addr);
        }
        UcpOp::PutConfirm { remote_addr, .. } => {
            out.put_u8(OP_PUT_CONFIRM);
            out.put_u64_le(*remote_addr);
        }
        UcpOp::GetReply { request, .. } => {
            out.put_u8(OP_GET_REPLY);
            out.put_u64_le(request.0);
        }
        UcpOp::ActiveMessage { handler, .. } => {
            out.put_u8(OP_AM);
            out.put_u16_le(handler.0);
        }
        UcpOp::IfuncFrame { .. } => {
            out.put_u8(OP_IFUNC);
        }
        UcpOp::Get { .. } | UcpOp::PutAck { .. } => {
            unreachable!("ops without a detachable payload")
        }
    }
    (out.freeze(pool), detached)
}

/// Scatter-gather encode with this thread's encode pool.
pub fn encode_op_vectored(msg: &OutgoingMessage) -> (Bytes, Bytes) {
    tc_ucx::bytes::with_pool(|pool| encode_op_vectored_with(msg, pool))
}

/// Inverse of [`encode_op_vectored`]: decode `(head, payload)` back into a
/// fabric operation.  The reconstructed operation's payload *is* the
/// detached segment (refcount clone) — nothing is copied.
pub fn decode_op_vectored(head: &Bytes, payload: &Bytes) -> Result<OutgoingMessage> {
    if payload.is_empty() {
        return decode_op(head);
    }
    let err = |msg: &str| CoreError::Transport(format!("bad vectored op envelope: {msg}"));
    if head.len() < 17 {
        return Err(err("head shorter than the fixed header"));
    }
    let src = WorkerAddr(u32::from_le_bytes(head[0..4].try_into().unwrap()));
    let dst = WorkerAddr(u32::from_le_bytes(head[4..8].try_into().unwrap()));
    let request = RequestId(u64::from_le_bytes(head[8..16].try_into().unwrap()));
    let tag = head[16];
    let body = &head[17..];
    let op = match tag {
        OP_PUT => {
            if body.len() != 8 {
                return Err(err("PUT head must carry exactly the address"));
            }
            UcpOp::Put {
                remote_addr: u64::from_le_bytes(body[0..8].try_into().unwrap()),
                data: payload.clone(),
            }
        }
        OP_PUT_CONFIRM => {
            if body.len() != 8 {
                return Err(err("confirmed PUT head must carry exactly the address"));
            }
            UcpOp::PutConfirm {
                remote_addr: u64::from_le_bytes(body[0..8].try_into().unwrap()),
                data: payload.clone(),
            }
        }
        OP_GET_REPLY => {
            if body.len() != 8 {
                return Err(err("GetReply head must carry exactly the request id"));
            }
            UcpOp::GetReply {
                request: RequestId(u64::from_le_bytes(body[0..8].try_into().unwrap())),
                data: payload.clone(),
            }
        }
        OP_AM => {
            if body.len() != 2 {
                return Err(err("ActiveMessage head must carry exactly the handler id"));
            }
            UcpOp::ActiveMessage {
                handler: AmHandlerId(u16::from_le_bytes(body[0..2].try_into().unwrap())),
                payload: payload.clone(),
            }
        }
        OP_IFUNC => {
            if !body.is_empty() {
                return Err(err("IfuncFrame head must be bare"));
            }
            UcpOp::IfuncFrame {
                bytes: payload.clone(),
            }
        }
        other => {
            return Err(err(&format!(
                "op tag {other} cannot carry a payload segment"
            )))
        }
    };
    Ok(OutgoingMessage {
        src,
        dst,
        request,
        op,
    })
}

/// Decode a [`TAG_OP`] envelope payload back into a fabric operation.
///
/// Zero-copy: the payload of the returned operation (`Put` data, `GetReply`
/// data, AM payload, ifunc frame bytes) is a sub-view of `bytes`' shared
/// allocation — nothing is copied on the receive path.
pub fn decode_op(bytes: &Bytes) -> Result<OutgoingMessage> {
    let err = |msg: &str| CoreError::Transport(format!("bad op envelope: {msg}"));
    if bytes.len() < 17 {
        return Err(err("shorter than the fixed header"));
    }
    let src = WorkerAddr(u32::from_le_bytes(bytes[0..4].try_into().unwrap()));
    let dst = WorkerAddr(u32::from_le_bytes(bytes[4..8].try_into().unwrap()));
    let request = RequestId(u64::from_le_bytes(bytes[8..16].try_into().unwrap()));
    let tag = bytes[16];
    let body = &bytes[17..];
    let op = match tag {
        OP_PUT => {
            if body.len() < 8 {
                return Err(err("PUT missing address"));
            }
            UcpOp::Put {
                remote_addr: u64::from_le_bytes(body[0..8].try_into().unwrap()),
                data: bytes.slice(17 + 8..),
            }
        }
        OP_PUT_CONFIRM => {
            if body.len() < 8 {
                return Err(err("confirmed PUT missing address"));
            }
            UcpOp::PutConfirm {
                remote_addr: u64::from_le_bytes(body[0..8].try_into().unwrap()),
                data: bytes.slice(17 + 8..),
            }
        }
        OP_PUT_ACK => {
            if body.len() != 8 {
                return Err(err("PUT ack body must be 8 bytes"));
            }
            UcpOp::PutAck {
                acked: RequestId(u64::from_le_bytes(body[0..8].try_into().unwrap())),
            }
        }
        OP_GET => {
            if body.len() != 16 {
                return Err(err("GET body must be 16 bytes"));
            }
            UcpOp::Get {
                remote_addr: u64::from_le_bytes(body[0..8].try_into().unwrap()),
                len: u64::from_le_bytes(body[8..16].try_into().unwrap()),
            }
        }
        OP_GET_REPLY => {
            if body.len() < 8 {
                return Err(err("GetReply missing request id"));
            }
            UcpOp::GetReply {
                request: RequestId(u64::from_le_bytes(body[0..8].try_into().unwrap())),
                data: bytes.slice(17 + 8..),
            }
        }
        OP_AM => {
            if body.len() < 2 {
                return Err(err("ActiveMessage missing handler id"));
            }
            UcpOp::ActiveMessage {
                handler: AmHandlerId(u16::from_le_bytes(body[0..2].try_into().unwrap())),
                payload: bytes.slice(17 + 2..),
            }
        }
        OP_IFUNC => UcpOp::IfuncFrame {
            bytes: bytes.slice(17..),
        },
        other => return Err(err(&format!("unknown op tag {other}"))),
    };
    Ok(OutgoingMessage {
        src,
        dst,
        request,
        op,
    })
}

/// Encode a control request carrying a matching token and a body.
pub fn encode_control(token: u64, body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + body.len());
    out.extend_from_slice(&token.to_le_bytes());
    out.extend_from_slice(body);
    out
}

/// Split a control envelope into `(token, body)`.
pub fn decode_control(bytes: &[u8]) -> Result<(u64, &[u8])> {
    if bytes.len() < 8 {
        return Err(CoreError::Transport(
            "control envelope shorter than its token".into(),
        ));
    }
    Ok((
        u64::from_le_bytes(bytes[0..8].try_into().unwrap()),
        &bytes[8..],
    ))
}

/// Serialize runtime counters for a [`TAG_STATS_REPLY`].
pub fn encode_stats(stats: &RuntimeStats) -> Vec<u8> {
    let fields = [
        stats.full_frames_received,
        stats.truncated_frames_received,
        stats.ifuncs_executed,
        stats.jit_compilations,
        stats.binary_loads,
        stats.ams_executed,
        stats.gets_served,
        stats.puts_applied,
        stats.ifunc_full_sends,
        stats.ifunc_truncated_sends,
        stats.bytes_sent,
    ];
    let mut out = Vec::with_capacity(fields.len() * 8);
    for f in fields {
        out.extend_from_slice(&f.to_le_bytes());
    }
    out
}

/// Inverse of [`encode_stats`].
pub fn decode_stats(bytes: &[u8]) -> Result<RuntimeStats> {
    if bytes.len() != 11 * 8 {
        return Err(CoreError::Transport(format!(
            "stats reply must be 88 bytes, got {}",
            bytes.len()
        )));
    }
    let mut fields = [0u64; 11];
    for (i, f) in fields.iter_mut().enumerate() {
        *f = u64::from_le_bytes(bytes[i * 8..i * 8 + 8].try_into().unwrap());
    }
    Ok(RuntimeStats {
        full_frames_received: fields[0],
        truncated_frames_received: fields[1],
        ifuncs_executed: fields[2],
        jit_compilations: fields[3],
        binary_loads: fields[4],
        ams_executed: fields[5],
        gets_served: fields[6],
        puts_applied: fields[7],
        ifunc_full_sends: fields[8],
        ifunc_truncated_sends: fields[9],
        bytes_sent: fields[10],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_ops() -> Vec<UcpOp> {
        vec![
            UcpOp::Put {
                remote_addr: 0x40,
                data: vec![1, 2, 3].into(),
            },
            UcpOp::Get {
                remote_addr: 0x80,
                len: 16,
            },
            UcpOp::GetReply {
                request: RequestId(9),
                data: vec![7; 8].into(),
            },
            UcpOp::ActiveMessage {
                handler: AmHandlerId(3),
                payload: vec![5].into(),
            },
            UcpOp::IfuncFrame {
                bytes: vec![0xAB; 64].into(),
            },
            UcpOp::PutConfirm {
                remote_addr: 0x48,
                data: vec![4, 5].into(),
            },
            UcpOp::PutAck {
                acked: RequestId(31),
            },
        ]
    }

    #[test]
    fn op_codec_roundtrips_every_variant() {
        for op in sample_ops() {
            let msg = OutgoingMessage {
                src: WorkerAddr(2),
                dst: WorkerAddr(5),
                request: RequestId(77),
                op,
            };
            let decoded = decode_op(&encode_op(&msg)).unwrap();
            assert_eq!(decoded, msg);
        }
    }

    #[test]
    fn op_decode_is_zero_copy_and_pool_reuses_buffers() {
        // A dedicated copy-counting pool: every allocation is visible in
        // `stats.allocated`, every recycled buffer in `stats.reused`.
        let mut pool = BufPool::new();
        for (i, op) in sample_ops().into_iter().enumerate() {
            let msg = OutgoingMessage {
                src: WorkerAddr(1),
                dst: WorkerAddr(2),
                request: RequestId(i as u64),
                op,
            };
            let encoded = encode_op_with(&msg, &mut pool);
            let decoded = decode_op(&encoded).unwrap();
            assert_eq!(decoded, msg);
            // Decode must alias the envelope buffer, not copy out of it.
            match &decoded.op {
                UcpOp::Put { data, .. } => assert!(data.shares_storage(&encoded)),
                UcpOp::PutConfirm { data, .. } => assert!(data.shares_storage(&encoded)),
                UcpOp::GetReply { data, .. } => assert!(data.shares_storage(&encoded)),
                UcpOp::ActiveMessage { payload, .. } => {
                    assert!(payload.shares_storage(&encoded))
                }
                UcpOp::IfuncFrame { bytes } => assert!(bytes.shares_storage(&encoded)),
                UcpOp::Get { .. } | UcpOp::PutAck { .. } => {}
            }
            drop(decoded);
            drop(encoded);
        }
        // Every envelope fits the first slot, and each is released before
        // the next encode: exactly one allocation, the rest reuses.
        assert_eq!(pool.stats.allocated, 1, "{:?}", pool.stats);
        assert_eq!(pool.stats.reused, 6);
    }

    #[test]
    fn vectored_codec_roundtrips_and_never_copies_large_payloads() {
        let mut pool = BufPool::new();
        let large = Bytes::from(vec![0x42u8; 8 * 1024]);
        let ops = vec![
            UcpOp::Put {
                remote_addr: 0x40,
                data: large.clone(),
            },
            UcpOp::PutConfirm {
                remote_addr: 0x40,
                data: large.clone(),
            },
            UcpOp::GetReply {
                request: RequestId(9),
                data: large.clone(),
            },
            UcpOp::ActiveMessage {
                handler: AmHandlerId(3),
                payload: large.clone(),
            },
            UcpOp::IfuncFrame {
                bytes: large.clone(),
            },
        ];
        for (i, op) in ops.into_iter().enumerate() {
            let msg = OutgoingMessage {
                src: WorkerAddr(1),
                dst: WorkerAddr(2),
                request: RequestId(i as u64),
                op,
            };
            let (head, payload) = encode_op_vectored_with(&msg, &mut pool);
            // The payload segment IS the original buffer — no copy at all.
            assert!(payload.shares_storage(&large));
            assert!(head.len() <= 25, "head must be tiny, got {}", head.len());
            let decoded = decode_op_vectored(&head, &payload).unwrap();
            assert_eq!(decoded, msg);
            // The logical wire image equals the single-buffer encoding.
            let mut joined = head.to_vec();
            joined.extend_from_slice(&payload);
            assert_eq!(joined, encode_op_with(&msg, &mut pool).to_vec());
        }
        // Small operations stay single-buffer.
        let small = OutgoingMessage {
            src: WorkerAddr(0),
            dst: WorkerAddr(1),
            request: RequestId(0),
            op: UcpOp::Put {
                remote_addr: 8,
                data: vec![1, 2, 3].into(),
            },
        };
        let (head, payload) = encode_op_vectored_with(&small, &mut pool);
        assert!(payload.is_empty());
        assert_eq!(decode_op_vectored(&head, &payload).unwrap(), small);
    }

    #[test]
    fn vectored_decode_rejects_malformed_heads() {
        let payload = Bytes::from(vec![0u8; 600]);
        assert!(decode_op_vectored(&Bytes::new(), &payload).is_err());
        // A GET head cannot carry a payload segment.
        let get = encode_op(&OutgoingMessage {
            src: WorkerAddr(0),
            dst: WorkerAddr(1),
            request: RequestId(0),
            op: UcpOp::Get {
                remote_addr: 0,
                len: 8,
            },
        });
        assert!(decode_op_vectored(&get, &payload).is_err());
    }

    #[test]
    fn op_decode_rejects_garbage() {
        assert!(decode_op(&Bytes::new()).is_err());
        assert!(decode_op(&Bytes::from(vec![0u8; 16])).is_err());
        let mut bad = encode_op(&OutgoingMessage {
            src: WorkerAddr(0),
            dst: WorkerAddr(1),
            request: RequestId(0),
            op: UcpOp::Get {
                remote_addr: 0,
                len: 8,
            },
        })
        .to_vec();
        bad[16] = 99; // unknown op tag
        assert!(decode_op(&Bytes::from(bad)).is_err());
    }

    #[test]
    fn rel_header_roundtrips_and_aliases_the_head() {
        let head = encode_op(&OutgoingMessage {
            src: WorkerAddr(0),
            dst: WorkerAddr(1),
            request: RequestId(4),
            op: UcpOp::Put {
                remote_addr: 0x20,
                data: vec![9, 9].into(),
            },
        });
        let wrapped = encode_rel_head(7, 3, &head);
        let (seq, ack, inner) = decode_rel_head(&wrapped).unwrap();
        assert_eq!((seq, ack), (7, 3));
        assert_eq!(inner, head);
        assert!(inner.shares_storage(&wrapped), "head must be a sub-view");
        assert!(decode_rel_head(&Bytes::from(vec![0u8; 15])).is_err());
    }

    #[test]
    fn ack_codec_roundtrips() {
        assert_eq!(decode_ack(&encode_ack(42)).unwrap(), 42);
        assert!(decode_ack(&[1, 2, 3]).is_err());
        assert!(decode_ack(&[0; 9]).is_err());
    }

    #[test]
    fn stats_codec_roundtrips() {
        let stats = RuntimeStats {
            full_frames_received: 1,
            truncated_frames_received: 2,
            ifuncs_executed: 3,
            jit_compilations: 4,
            binary_loads: 5,
            ams_executed: 6,
            gets_served: 7,
            puts_applied: 8,
            ifunc_full_sends: 9,
            ifunc_truncated_sends: 10,
            bytes_sent: 11,
        };
        assert_eq!(decode_stats(&encode_stats(&stats)).unwrap(), stats);
        assert!(decode_stats(&[0; 3]).is_err());
    }

    #[test]
    fn control_codec_matches_tokens() {
        let enc = encode_control(42, &[1, 2, 3]);
        let (token, body) = decode_control(&enc).unwrap();
        assert_eq!(token, 42);
        assert_eq!(body, &[1, 2, 3]);
        assert!(decode_control(&[0; 4]).is_err());
    }
}
