//! Wire conventions of the threaded cluster backend.
//!
//! The threaded transport moves [`tc_ucx::OutgoingMessage`]s between OS
//! threads as tagged byte envelopes.  Earlier versions of the repository left
//! these conventions to each integration test (ad-hoc tag constants and
//! hand-rolled framing); they are now part of the transport layer so every
//! user of the cluster API shares one protocol.
//!
//! Envelope tags:
//!
//! * [`TAG_OP`] — an encoded fabric operation (the payload of
//!   [`encode_op`]); this is the data plane.
//! * [`TAG_PEEK`] / [`TAG_PEEK_REPLY`] — driver reads a node's memory
//!   (control plane; token-matched).
//! * [`TAG_POKE`] / [`TAG_POKE_ACK`] — driver writes a node's memory.
//! * [`TAG_STATS`] / [`TAG_STATS_REPLY`] — driver samples a node's
//!   [`RuntimeStats`].
//! * [`TAG_ERROR`] — a node reports a runtime error to the driver.

use crate::error::{CoreError, Result};
use crate::metrics::RuntimeStats;
use tc_ucx::{AmHandlerId, OutgoingMessage, RequestId, UcpOp, WorkerAddr};

/// Envelope tag: encoded fabric operation (data plane).
pub const TAG_OP: u64 = 1;
/// Envelope tag: driver asks a node to read memory.
pub const TAG_PEEK: u64 = 2;
/// Envelope tag: node answers a [`TAG_PEEK`].
pub const TAG_PEEK_REPLY: u64 = 3;
/// Envelope tag: driver asks a node to write memory.
pub const TAG_POKE: u64 = 4;
/// Envelope tag: node acknowledges a [`TAG_POKE`].
pub const TAG_POKE_ACK: u64 = 5;
/// Envelope tag: driver asks a node for its runtime counters.
pub const TAG_STATS: u64 = 6;
/// Envelope tag: node answers a [`TAG_STATS`].
pub const TAG_STATS_REPLY: u64 = 7;
/// Envelope tag: node reports a processing error to the driver.
pub const TAG_ERROR: u64 = 8;

const OP_PUT: u8 = 0;
const OP_GET: u8 = 1;
const OP_GET_REPLY: u8 = 2;
const OP_AM: u8 = 3;
const OP_IFUNC: u8 = 4;

/// Encode a fabric operation for a [`TAG_OP`] envelope.
pub fn encode_op(msg: &OutgoingMessage) -> Vec<u8> {
    let mut out = Vec::with_capacity(32 + msg.op.wire_size());
    out.extend_from_slice(&msg.src.0.to_le_bytes());
    out.extend_from_slice(&msg.dst.0.to_le_bytes());
    out.extend_from_slice(&msg.request.0.to_le_bytes());
    match &msg.op {
        UcpOp::Put { remote_addr, data } => {
            out.push(OP_PUT);
            out.extend_from_slice(&remote_addr.to_le_bytes());
            out.extend_from_slice(data);
        }
        UcpOp::Get { remote_addr, len } => {
            out.push(OP_GET);
            out.extend_from_slice(&remote_addr.to_le_bytes());
            out.extend_from_slice(&len.to_le_bytes());
        }
        UcpOp::GetReply { request, data } => {
            out.push(OP_GET_REPLY);
            out.extend_from_slice(&request.0.to_le_bytes());
            out.extend_from_slice(data);
        }
        UcpOp::ActiveMessage { handler, payload } => {
            out.push(OP_AM);
            out.extend_from_slice(&handler.0.to_le_bytes());
            out.extend_from_slice(payload);
        }
        UcpOp::IfuncFrame { bytes } => {
            out.push(OP_IFUNC);
            out.extend_from_slice(bytes);
        }
    }
    out
}

/// Decode a [`TAG_OP`] envelope payload back into a fabric operation.
pub fn decode_op(bytes: &[u8]) -> Result<OutgoingMessage> {
    let err = |msg: &str| CoreError::Transport(format!("bad op envelope: {msg}"));
    if bytes.len() < 17 {
        return Err(err("shorter than the fixed header"));
    }
    let src = WorkerAddr(u32::from_le_bytes(bytes[0..4].try_into().unwrap()));
    let dst = WorkerAddr(u32::from_le_bytes(bytes[4..8].try_into().unwrap()));
    let request = RequestId(u64::from_le_bytes(bytes[8..16].try_into().unwrap()));
    let tag = bytes[16];
    let body = &bytes[17..];
    let op = match tag {
        OP_PUT => {
            if body.len() < 8 {
                return Err(err("PUT missing address"));
            }
            UcpOp::Put {
                remote_addr: u64::from_le_bytes(body[0..8].try_into().unwrap()),
                data: body[8..].to_vec(),
            }
        }
        OP_GET => {
            if body.len() != 16 {
                return Err(err("GET body must be 16 bytes"));
            }
            UcpOp::Get {
                remote_addr: u64::from_le_bytes(body[0..8].try_into().unwrap()),
                len: u64::from_le_bytes(body[8..16].try_into().unwrap()),
            }
        }
        OP_GET_REPLY => {
            if body.len() < 8 {
                return Err(err("GetReply missing request id"));
            }
            UcpOp::GetReply {
                request: RequestId(u64::from_le_bytes(body[0..8].try_into().unwrap())),
                data: body[8..].to_vec(),
            }
        }
        OP_AM => {
            if body.len() < 2 {
                return Err(err("ActiveMessage missing handler id"));
            }
            UcpOp::ActiveMessage {
                handler: AmHandlerId(u16::from_le_bytes(body[0..2].try_into().unwrap())),
                payload: body[2..].to_vec(),
            }
        }
        OP_IFUNC => UcpOp::IfuncFrame {
            bytes: body.to_vec(),
        },
        other => return Err(err(&format!("unknown op tag {other}"))),
    };
    Ok(OutgoingMessage {
        src,
        dst,
        request,
        op,
    })
}

/// Encode a control request carrying a matching token and a body.
pub fn encode_control(token: u64, body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + body.len());
    out.extend_from_slice(&token.to_le_bytes());
    out.extend_from_slice(body);
    out
}

/// Split a control envelope into `(token, body)`.
pub fn decode_control(bytes: &[u8]) -> Result<(u64, &[u8])> {
    if bytes.len() < 8 {
        return Err(CoreError::Transport(
            "control envelope shorter than its token".into(),
        ));
    }
    Ok((
        u64::from_le_bytes(bytes[0..8].try_into().unwrap()),
        &bytes[8..],
    ))
}

/// Serialize runtime counters for a [`TAG_STATS_REPLY`].
pub fn encode_stats(stats: &RuntimeStats) -> Vec<u8> {
    let fields = [
        stats.full_frames_received,
        stats.truncated_frames_received,
        stats.ifuncs_executed,
        stats.jit_compilations,
        stats.binary_loads,
        stats.ams_executed,
        stats.gets_served,
        stats.puts_applied,
        stats.ifunc_full_sends,
        stats.ifunc_truncated_sends,
        stats.bytes_sent,
    ];
    let mut out = Vec::with_capacity(fields.len() * 8);
    for f in fields {
        out.extend_from_slice(&f.to_le_bytes());
    }
    out
}

/// Inverse of [`encode_stats`].
pub fn decode_stats(bytes: &[u8]) -> Result<RuntimeStats> {
    if bytes.len() != 11 * 8 {
        return Err(CoreError::Transport(format!(
            "stats reply must be 88 bytes, got {}",
            bytes.len()
        )));
    }
    let mut fields = [0u64; 11];
    for (i, f) in fields.iter_mut().enumerate() {
        *f = u64::from_le_bytes(bytes[i * 8..i * 8 + 8].try_into().unwrap());
    }
    Ok(RuntimeStats {
        full_frames_received: fields[0],
        truncated_frames_received: fields[1],
        ifuncs_executed: fields[2],
        jit_compilations: fields[3],
        binary_loads: fields[4],
        ams_executed: fields[5],
        gets_served: fields[6],
        puts_applied: fields[7],
        ifunc_full_sends: fields[8],
        ifunc_truncated_sends: fields[9],
        bytes_sent: fields[10],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_codec_roundtrips_every_variant() {
        let ops = [
            UcpOp::Put {
                remote_addr: 0x40,
                data: vec![1, 2, 3],
            },
            UcpOp::Get {
                remote_addr: 0x80,
                len: 16,
            },
            UcpOp::GetReply {
                request: RequestId(9),
                data: vec![7; 8],
            },
            UcpOp::ActiveMessage {
                handler: AmHandlerId(3),
                payload: vec![5],
            },
            UcpOp::IfuncFrame {
                bytes: vec![0xAB; 64],
            },
        ];
        for op in ops {
            let msg = OutgoingMessage {
                src: WorkerAddr(2),
                dst: WorkerAddr(5),
                request: RequestId(77),
                op,
            };
            let decoded = decode_op(&encode_op(&msg)).unwrap();
            assert_eq!(decoded, msg);
        }
    }

    #[test]
    fn op_decode_rejects_garbage() {
        assert!(decode_op(&[]).is_err());
        assert!(decode_op(&[0; 16]).is_err());
        let mut bad = encode_op(&OutgoingMessage {
            src: WorkerAddr(0),
            dst: WorkerAddr(1),
            request: RequestId(0),
            op: UcpOp::Get {
                remote_addr: 0,
                len: 8,
            },
        });
        bad[16] = 99; // unknown op tag
        assert!(decode_op(&bad).is_err());
    }

    #[test]
    fn stats_codec_roundtrips() {
        let stats = RuntimeStats {
            full_frames_received: 1,
            truncated_frames_received: 2,
            ifuncs_executed: 3,
            jit_compilations: 4,
            binary_loads: 5,
            ams_executed: 6,
            gets_served: 7,
            puts_applied: 8,
            ifunc_full_sends: 9,
            ifunc_truncated_sends: 10,
            bytes_sent: 11,
        };
        assert_eq!(decode_stats(&encode_stats(&stats)).unwrap(), stats);
        assert!(decode_stats(&[0; 3]).is_err());
    }

    #[test]
    fn control_codec_matches_tokens() {
        let enc = encode_control(42, &[1, 2, 3]);
        let (token, body) = decode_control(&enc).unwrap();
        assert_eq!(token, 42);
        assert_eq!(body, &[1, 2, 3]);
        assert!(decode_control(&[0; 4]).is_err());
    }
}
