//! The server-process half of the socket backend: everything a
//! `tc-socket-server`-style binary needs to join a cluster.
//!
//! A server process owns one full [`NodeRuntime`] and one connection to the
//! driver.  It introduces itself with HELLO, builds its runtime from the
//! WELCOME configuration (rank layout, target triple, opt level,
//! reliability tunables), then loops: deliver data-plane frames to the
//! runtime, flush whatever the runtime posts back onto the socket, answer
//! control requests (peek/poke/stats/AM deploy), and exit cleanly on
//! SHUTDOWN — or silently when the driver disappears, so a crashed driver
//! never leaves orphan processes grinding the CPU.
//!
//! Native AM handlers are closures and cannot cross a process boundary, so
//! a server binary compiles in a *catalog* of named handlers; the driver's
//! `deploy_am` ships only the name, and the server deploys its catalog
//! entry under it.

use super::reliable::ReliableSet;
use super::socket::{
    decode_welcome, encode_hello, encode_rel_info, most_stressed, RelInfo, Welcome, DRIVER_PORT,
    RANK_ANY, TAG_AM_ACK, TAG_AM_DEPLOY, TAG_BYE, TAG_HELLO, TAG_LINK_RESET, TAG_PING, TAG_PONG,
    TAG_REL_INFO, TAG_SHUTDOWN, TAG_WELCOME,
};
use super::wire;
use crate::runtime::{NativeAmHandler, NodeRuntime};
use std::time::{Duration, Instant};
use tc_jit::Memory;
use tc_net::{Connection, Frame, NetError, SocketSpec};
use tc_ucx::Bytes;

/// Command-line configuration of a server process.
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Driver endpoint, in [`SocketSpec`] syntax (`unix:/path`,
    /// `tcp:host:port`).
    pub connect: String,
    /// The rank to claim; `None` lets the driver assign one.
    pub rank: Option<u32>,
    /// How long to keep retrying the initial connect (the driver may still
    /// be binding its listener).
    pub connect_timeout: Duration,
}

impl ServerOptions {
    /// Parse `--connect <spec> [--rank <n>]` style arguments (the exact
    /// contract of [`tc_net::spawn_server`]).
    pub fn from_args<I: IntoIterator<Item = String>>(args: I) -> Result<ServerOptions, String> {
        let mut connect = None;
        let mut rank = None;
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--connect" => {
                    connect = Some(it.next().ok_or("--connect needs a value")?);
                }
                "--rank" => {
                    let v = it.next().ok_or("--rank needs a value")?;
                    rank = Some(v.parse::<u32>().map_err(|_| format!("bad rank `{v}`"))?);
                }
                "--help" | "-h" => {
                    return Err("usage: --connect <unix:/path | tcp:host:port> [--rank <n>]".into())
                }
                other => return Err(format!("unknown argument `{other}`")),
            }
        }
        Ok(ServerOptions {
            connect: connect.ok_or("--connect is required")?,
            rank,
            connect_timeout: Duration::from_secs(10),
        })
    }
}

/// An encoded op head plus its detached payload, buffered for
/// retransmission.
type StoredEnv = (Bytes, Bytes);

/// Everything the event loop tracks beyond the runtime itself.
struct Server {
    conn: Connection,
    runtime: NodeRuntime,
    rank: u32,
    clients: usize,
    total: usize,
    rel: Option<ReliableSet<StoredEnv>>,
    rel_tick: Duration,
    last_tick: Instant,
    last_info: RelInfo,
    epoch: Instant,
    catalog: Vec<(String, NativeAmHandler)>,
}

impl Server {
    fn now(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    fn send_error(&mut self, detail: String) {
        self.conn.queue(Frame::new(
            self.rank,
            DRIVER_PORT,
            wire::TAG_ERROR,
            detail.into_bytes(),
        ));
    }

    /// Poll every delivered operation and flush the runtime's outgoing
    /// queue onto the socket, looping over self-sends until quiescent.
    fn process_delivered(&mut self) {
        loop {
            for outcome in self.runtime.poll(usize::MAX) {
                if let Err(e) = outcome {
                    self.send_error(e.to_string());
                }
            }
            let outgoing = self.runtime.take_outgoing();
            if outgoing.is_empty() {
                break;
            }
            for msg in outgoing {
                let dst = msg.dst.index();
                if dst == self.rank as usize {
                    // Loopback: the fault model excludes self-sends on every
                    // backend, so deliver directly and let the outer loop
                    // re-poll.
                    self.runtime.deliver(msg);
                    continue;
                }
                let (head, payload) = wire::encode_op_vectored(&msg);
                // Misaddressed sends bypass reliability (they would
                // retransmit forever); the driver counts the drop.
                let bypass_rel = dst >= self.total;
                match &mut self.rel {
                    Some(rel) if !bypass_rel => {
                        let now = self.epoch.elapsed().as_nanos() as u64;
                        let (seq, ack) = rel.send(dst as u32, (head.clone(), payload.clone()), now);
                        let data = wire::encode_rel_head(seq, ack, &head);
                        self.conn.queue(Frame::with_payload(
                            self.rank,
                            dst as u32,
                            wire::TAG_ROP,
                            data,
                            payload,
                        ));
                    }
                    _ => {
                        super::socket::strace!(
                            "[server {}] send tag={} to={} data={}B payload={}B",
                            self.rank,
                            wire::TAG_OP,
                            dst,
                            head.len(),
                            payload.len()
                        );
                        self.conn.queue(Frame::with_payload(
                            self.rank,
                            dst as u32,
                            wire::TAG_OP,
                            head,
                            payload,
                        ));
                    }
                }
            }
        }
        self.publish_rel_info();
    }

    /// Push the reliability digest to the driver when it meaningfully
    /// changed (counters moved, unacked count moved, or the earliest
    /// deadline shifted by more than a millisecond).
    fn publish_rel_info(&mut self) {
        let Some(rel) = &self.rel else {
            return;
        };
        let now = self.now();
        let remaining = match rel.next_deadline() {
            Some(d) => d.saturating_sub(now),
            None => u64::MAX,
        };
        let info = RelInfo {
            unacked: rel.unacked_total(),
            remaining_ns: remaining,
            metrics: rel.metrics,
            health: most_stressed(&rel.link_health()),
        };
        let deadline_moved = info.remaining_ns.abs_diff(self.last_info.remaining_ns) > 1_000_000;
        if info.unacked != self.last_info.unacked
            || info.metrics != self.last_info.metrics
            || info.health != self.last_info.health
            || deadline_moved
        {
            self.last_info = info;
            self.conn.queue(Frame::new(
                self.rank,
                DRIVER_PORT,
                TAG_REL_INFO,
                encode_rel_info(&info),
            ));
        }
    }

    /// Handle one reliable data-plane frame; returns whether operations
    /// became deliverable, and the cumulative ack to send the peer.  The ack
    /// is *not* queued here: the main loop queues it behind the replies the
    /// delivered ops generate, so on the FIFO socket the driver can never
    /// observe an op as acked without also holding its effects — which is
    /// what makes a kill between two flushes recoverable by frame replay.
    fn on_reliable_op(&mut self, frame: Frame) -> (bool, Option<u64>) {
        let Some(rel) = &mut self.rel else {
            self.send_error("reliable frame on a server without a fault plan".into());
            return (false, None);
        };
        let (seq, ack, head) = match wire::decode_rel_head(&frame.data) {
            Ok(parts) => parts,
            Err(e) => {
                self.send_error(e.to_string());
                return (false, None);
            }
        };
        let now = self.epoch.elapsed().as_nanos() as u64;
        let out = rel.on_data(frame.from, seq, ack, (head, frame.payload), now);
        let mut delivered = false;
        for (h, p) in out.deliver {
            match wire::decode_op_vectored(&h, &p) {
                Ok(op) => {
                    self.runtime.deliver(op);
                    delivered = true;
                }
                Err(e) => self.send_error(e.to_string()),
            }
        }
        self.publish_rel_info();
        (delivered, Some(out.ack))
    }

    /// Flush deferred cumulative acks (one per peer, newest value wins).
    fn queue_acks(&mut self, acks: &mut Vec<(u32, u64)>) {
        for (peer, ack) in acks.drain(..) {
            self.conn.queue(Frame::new(
                self.rank,
                peer,
                wire::TAG_ACK,
                wire::encode_ack(ack),
            ));
        }
    }

    /// The driver respawned peer rank `peer` with a fresh sequence space:
    /// tear down the reliable link (send and receive state both) and re-send
    /// the retained unacked frames renumbered from seq 1.
    fn on_link_reset(&mut self, peer: u32) {
        let Some(rel) = &mut self.rel else {
            return;
        };
        let now = self.epoch.elapsed().as_nanos() as u64;
        let retained = rel.reset_peer(peer);
        super::socket::strace!(
            "[server {}] link reset to peer {peer}: replaying {} frames",
            self.rank,
            retained.len()
        );
        for (head, payload) in retained {
            let (seq, ack) = rel.send(peer, (head.clone(), payload.clone()), now);
            let data = wire::encode_rel_head(seq, ack, &head);
            self.conn.queue(Frame::with_payload(
                self.rank,
                peer,
                wire::TAG_ROP,
                data,
                payload,
            ));
        }
        self.publish_rel_info();
    }

    /// Handle one control-plane frame (strictly after pending data has been
    /// processed — the control plane doubles as a barrier).
    fn on_control(&mut self, frame: Frame) {
        match frame.tag {
            wire::TAG_PEEK => {
                let Ok((token, body)) = wire::decode_control(frame.data.as_slice()) else {
                    return;
                };
                if body.len() != 16 {
                    return;
                }
                let addr = u64::from_le_bytes(body[0..8].try_into().unwrap());
                let len = u64::from_le_bytes(body[8..16].try_into().unwrap()) as usize;
                let mut buf = vec![0u8; len];
                let reply = match self.runtime.memory.read(addr, &mut buf) {
                    Ok(()) => wire::encode_control(token, &buf),
                    Err(_) => wire::encode_control(token, &[]),
                };
                self.conn.queue(Frame::new(
                    self.rank,
                    DRIVER_PORT,
                    wire::TAG_PEEK_REPLY,
                    reply,
                ));
            }
            wire::TAG_POKE => {
                let Ok((token, body)) = wire::decode_control(frame.data.as_slice()) else {
                    return;
                };
                if body.len() < 8 {
                    return;
                }
                let addr = u64::from_le_bytes(body[0..8].try_into().unwrap());
                let ok = self.runtime.memory.write(addr, &body[8..]).is_ok();
                self.conn.queue(Frame::new(
                    self.rank,
                    DRIVER_PORT,
                    wire::TAG_POKE_ACK,
                    wire::encode_control(token, &[ok as u8]),
                ));
            }
            wire::TAG_STATS => {
                let Ok((token, _)) = wire::decode_control(frame.data.as_slice()) else {
                    return;
                };
                let reply = wire::encode_control(token, &wire::encode_stats(&self.runtime.stats));
                self.conn.queue(Frame::new(
                    self.rank,
                    DRIVER_PORT,
                    wire::TAG_STATS_REPLY,
                    reply,
                ));
            }
            TAG_AM_DEPLOY => {
                let Ok((token, body)) = wire::decode_control(frame.data.as_slice()) else {
                    return;
                };
                let name = String::from_utf8_lossy(body).into_owned();
                let found = self
                    .catalog
                    .iter()
                    .find(|(n, _)| *n == name)
                    .map(|(_, h)| h.clone());
                let ok = match found {
                    Some(handler) => {
                        self.runtime.deploy_am_handler(name, handler);
                        true
                    }
                    None => false,
                };
                self.conn.queue(Frame::new(
                    self.rank,
                    DRIVER_PORT,
                    TAG_AM_ACK,
                    wire::encode_control(token, &[ok as u8]),
                ));
            }
            _ => {}
        }
    }

    /// Run the retransmission timer if its cadence elapsed.
    fn tick(&mut self) {
        if self.rel.is_none() || self.last_tick.elapsed() < self.rel_tick {
            return;
        }
        self.last_tick = Instant::now();
        let now = self.now();
        let frames: Vec<Frame> = {
            let rel = self.rel.as_mut().expect("checked above");
            rel.tick(now)
                .into_iter()
                .map(|f| {
                    let data = wire::encode_rel_head(f.seq, f.ack, &f.m.0);
                    Frame::with_payload(self.rank, f.peer, wire::TAG_ROP, data, f.m.1.clone())
                })
                .collect()
        };
        for f in frames {
            self.conn.queue(f);
        }
        self.publish_rel_info();
    }

    /// Flush everything, announce the close, and drain the socket.
    fn graceful_exit(&mut self) {
        self.process_delivered();
        self.publish_rel_info();
        self.conn
            .queue(Frame::new(self.rank, DRIVER_PORT, TAG_BYE, Vec::new()));
        let deadline = Instant::now() + Duration::from_secs(2);
        while self.conn.pending_writes() > 0 && Instant::now() < deadline {
            match self.conn.pump_write() {
                Ok(_) => {}
                Err(_) => return,
            }
            if self.conn.pending_writes() > 0 {
                std::thread::sleep(Duration::from_micros(200));
            }
        }
    }
}

/// Connect to the driver, handshake, and serve until SHUTDOWN (or until the
/// driver disappears).  `catalog` is the binary's set of deployable AM
/// handlers, looked up by name when the driver calls `deploy_am`.
pub fn serve(opts: ServerOptions, catalog: Vec<(String, NativeAmHandler)>) -> Result<(), String> {
    let spec = SocketSpec::parse(&opts.connect).map_err(|e| e.to_string())?;
    let mut conn =
        Connection::connect_with_retry(&spec, opts.connect_timeout).map_err(|e| e.to_string())?;

    let hello_rank = opts.rank.unwrap_or(RANK_ANY);
    conn.queue(Frame::new(
        hello_rank,
        DRIVER_PORT,
        TAG_HELLO,
        encode_hello(hello_rank),
    ));

    // Await the WELCOME (pumping writes so the HELLO actually leaves).  A
    // fast driver may already have data-plane frames on the wire right
    // behind the WELCOME; anything else in the batch is carried over to the
    // main loop, never dropped.
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut carry: Vec<Frame> = Vec::new();
    let welcome: Welcome = 'hs: loop {
        if Instant::now() >= deadline {
            return Err("timed out waiting for the driver's WELCOME".into());
        }
        conn.pump_write().map_err(|e| e.to_string())?;
        let mut frames = Vec::new();
        conn.pump_read(&mut frames).map_err(|e| e.to_string())?;
        let mut welcome = None;
        for f in frames {
            if welcome.is_none() && f.tag == TAG_WELCOME {
                welcome = Some(decode_welcome(f.data.as_slice()).map_err(|e| e.to_string())?);
            } else {
                carry.push(f);
            }
        }
        if let Some(w) = welcome {
            break 'hs w;
        }
        std::thread::sleep(Duration::from_micros(500));
    };

    let total = (welcome.clients + welcome.servers) as usize;
    let rel_cfg = welcome.rel_config();
    let mut server = Server {
        conn,
        runtime: NodeRuntime::with_opt_level(
            tc_ucx::WorkerAddr(welcome.rank),
            total as u32,
            welcome.triple,
            welcome.opt,
        ),
        rank: welcome.rank,
        clients: welcome.clients as usize,
        total,
        rel: welcome.reliable.then(|| ReliableSet::new(rel_cfg)),
        rel_tick: Duration::from_nanos(rel_cfg.rto / 2),
        last_tick: Instant::now(),
        last_info: RelInfo::default(),
        epoch: Instant::now(),
        catalog,
    };
    let _ = server.clients; // rank layout is driver-routed; kept for clarity

    let mut frames = Vec::new();
    let mut last_activity = Instant::now();
    loop {
        frames.clear();
        // First pass: whatever rode in behind the WELCOME.
        frames.append(&mut carry);
        match server.conn.pump_read(&mut frames) {
            Ok(()) => {}
            // The driver is gone.  A clean or mid-frame close both mean
            // "stop serving": exit quietly so no orphan survives the driver.
            Err(NetError::PeerClosed { .. }) => return Ok(()),
            Err(e) => return Err(e.to_string()),
        }
        if !frames.is_empty() {
            last_activity = Instant::now();
        }
        let mut pending_ops = false;
        let mut pending_acks: Vec<(u32, u64)> = Vec::new();
        let mut shutdown = false;
        for frame in frames.drain(..) {
            super::socket::strace!(
                "[server {}] recv tag={} from={} to={} data={}B payload={}B",
                server.rank,
                frame.tag,
                frame.from,
                frame.to,
                frame.data.len(),
                frame.payload.len()
            );
            match frame.tag {
                wire::TAG_OP => match wire::decode_op_vectored(&frame.data, &frame.payload) {
                    Ok(op) => {
                        server.runtime.deliver(op);
                        pending_ops = true;
                    }
                    Err(e) => server.send_error(e.to_string()),
                },
                wire::TAG_ROP => {
                    let from = frame.from;
                    let (delivered, ack) = server.on_reliable_op(frame);
                    pending_ops |= delivered;
                    if let Some(a) = ack {
                        match pending_acks.iter_mut().find(|(p, _)| *p == from) {
                            Some(entry) => entry.1 = a,
                            None => pending_acks.push((from, a)),
                        }
                    }
                }
                TAG_PING => {
                    // Liveness probe: echo the nonce straight back.
                    server.conn.queue(Frame::new(
                        server.rank,
                        DRIVER_PORT,
                        TAG_PONG,
                        frame.data.as_slice().to_vec(),
                    ));
                }
                TAG_LINK_RESET => {
                    let body = frame.data.as_slice();
                    if body.len() == 4 {
                        let peer = u32::from_le_bytes(body.try_into().unwrap());
                        server.on_link_reset(peer);
                    }
                }
                wire::TAG_ACK => {
                    let now = server.epoch.elapsed().as_nanos() as u64;
                    if let Some(rel) = &mut server.rel {
                        if let Ok(ack) = wire::decode_ack(frame.data.as_slice()) {
                            rel.on_ack(frame.from, ack, now);
                        }
                    }
                    server.publish_rel_info();
                }
                TAG_SHUTDOWN => shutdown = true,
                _ => {
                    // Control frames act as a barrier behind the data plane.
                    if pending_ops {
                        server.process_delivered();
                        pending_ops = false;
                    }
                    server.queue_acks(&mut pending_acks);
                    server.on_control(frame);
                }
            }
        }
        if pending_ops {
            server.process_delivered();
        }
        server.queue_acks(&mut pending_acks);
        if shutdown {
            server.graceful_exit();
            return Ok(());
        }
        server.tick();
        if let Err(e) = server.conn.pump_write() {
            return match e {
                NetError::PeerClosed { .. } => Ok(()),
                other => Err(other.to_string()),
            };
        }
        if server.conn.pending_writes() == 0 && server.runtime.completions_pending() == 0 {
            // Spin briefly after traffic (a driver round trip is tens of
            // microseconds away), then back off to sleeping when idle.
            if last_activity.elapsed() < Duration::from_millis(1) {
                std::thread::yield_now();
            } else {
                std::thread::sleep(Duration::from_micros(200));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_parse() {
        let opts = ServerOptions::from_args(
            ["--connect", "unix:/tmp/x.sock", "--rank", "5"]
                .into_iter()
                .map(String::from),
        )
        .unwrap();
        assert_eq!(opts.connect, "unix:/tmp/x.sock");
        assert_eq!(opts.rank, Some(5));

        let opts = ServerOptions::from_args(
            ["--connect", "tcp:127.0.0.1:9000"]
                .into_iter()
                .map(String::from),
        )
        .unwrap();
        assert_eq!(opts.rank, None);

        assert!(ServerOptions::from_args(["--rank", "1"].into_iter().map(String::from)).is_err());
        assert!(ServerOptions::from_args(["--bogus"].into_iter().map(String::from)).is_err());
    }
}
