//! The unified cluster API: one builder, pluggable transports.
//!
//! The paper's claim is that ifuncs move transparently between heterogeneous
//! processing elements.  This module makes the *driving* side equally
//! transparent: a [`Cluster`] owns a client runtime and a set of server
//! runtimes behind a [`Transport`], and the same scenario code runs unchanged
//! on either first-class backend:
//!
//! * [`SimTransport`] — the calibrated discrete-event engine (virtual time,
//!   [`crate::sim::TimingLog`] records, the machinery behind every table and
//!   figure reproduction);
//! * [`ThreadTransport`] — real OS threads and channels (wall-clock time,
//!   genuine concurrency; no timing model).
//!
//! ```
//! use tc_core::cluster::ClusterBuilder;
//! use tc_core::{build_ifunc_library, ToolchainOptions};
//! use tc_bitir::{ModuleBuilder, ScalarType, BinOp};
//!
//! // An ifunc: add the payload's first byte to the target counter.
//! let mut mb = ModuleBuilder::new("quick_tsi");
//! {
//!     let mut f = mb.entry_function();
//!     let payload = f.param(0);
//!     let target = f.param(2);
//!     let delta = f.load(ScalarType::U8, payload, 0);
//!     let counter = f.load(ScalarType::U64, target, 0);
//!     let sum = f.bin(BinOp::Add, ScalarType::U64, counter, delta);
//!     f.store(ScalarType::U64, sum, target, 0);
//!     let zero = f.const_i64(0);
//!     f.ret(zero);
//!     f.finish();
//! }
//! let library = build_ifunc_library(&mb.build(), &ToolchainOptions::default()).unwrap();
//!
//! // The same lines drive the simulated or the threaded backend.
//! let mut cluster = ClusterBuilder::new()
//!     .platform(tc_simnet::Platform::thor_bf2())
//!     .servers(2)
//!     .build_sim();
//! let handle = cluster.register_ifunc(library);
//! let msg = cluster.bitcode_message(handle, vec![5]).unwrap();
//! cluster.send_ifunc(&msg, 1).unwrap();
//! cluster.run_until_idle(1_000).unwrap();
//! assert_eq!(cluster.read_u64(1, tc_core::layout::TARGET_REGION_BASE).unwrap(), 5);
//! assert_eq!(cluster.stats(1).unwrap().ifuncs_executed, 1);
//! ```

pub mod completion;
pub mod reliable;
pub mod sim_transport;
pub mod socket;
pub mod socket_server;
pub mod thread_transport;
pub mod wire;

pub use completion::{ClaimShards, ClaimTable, CompletionSet, CompletionToken, PutHandle, Ready};
pub use reliable::{LinkHealth, RelConfig, RelMetrics};
pub use sim_transport::SimTransport;
pub use socket::{SocketConfig, SocketTransport, SocketTuning};
pub use socket_server::{serve as serve_socket, ServerOptions};
pub use tc_chaos::{ChaosSession, ChaosStats, FaultPlan, LinkFaults};
pub use tc_net::SocketSpec;
pub use thread_transport::{ThreadTransport, ThreadTuning};

use crate::error::{CoreError, Result};
use crate::ifunc::{IfuncHandle, IfuncLibrary, IfuncMessage};
use crate::layout::result_slot_addr;
use crate::metrics::RuntimeStats;
use crate::runtime::{Completion, NativeAmHandler, NodeRuntime};
use std::sync::Arc;
use tc_bitir::TargetTriple;
use tc_jit::OptLevel;
use tc_simnet::Platform;
use tc_ucx::{Bytes, RequestId, WorkerAddr};

/// Which first-class backend a [`ClusterBuilder`] should instantiate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Backend {
    /// The calibrated discrete-event simulation ([`SimTransport`]).
    Simnet,
    /// Real OS threads and channels ([`ThreadTransport`]).
    Threads,
    /// Separate OS processes over TCP/Unix sockets ([`SocketTransport`]).
    Socket,
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Backend::Simnet => "simnet",
            Backend::Threads => "threads",
            Backend::Socket => "socket",
        })
    }
}

/// Identity of one driver-side client runtime.
///
/// A cluster built with [`ClusterBuilder::clients`]`(C)` hosts `C`
/// independent injection streams: client `i` *is* fabric rank `i` (clients
/// occupy ranks `0..C`, servers ranks `C..C+S`).  Every per-client API —
/// sends, completion claiming, result-slot allocation — is keyed by this id,
/// so two clients can pipeline against the same servers without stealing
/// each other's completions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClientId(pub usize);

impl ClientId {
    /// The primary client (rank 0) — what every single-client wrapper uses.
    pub const PRIMARY: ClientId = ClientId(0);

    /// The client's index (equal to its fabric rank).
    pub fn index(self) -> usize {
        self.0
    }

    /// The client's fabric rank (clients occupy ranks `0..client_count`).
    pub fn rank(self) -> usize {
        self.0
    }
}

impl std::fmt::Display for ClientId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "client {}", self.0)
    }
}

/// Counters every transport keeps about the fabric itself (as opposed to the
/// per-node [`RuntimeStats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransportMetrics {
    /// Messages delivered to a destination node.
    pub messages_delivered: u64,
    /// Messages dropped by the fabric (misaddressed rank, stopped node).
    /// Never silently zero: both backends count their drops.
    pub messages_dropped: u64,
    /// Bytes the *client* posted to the fabric.  (Server-side traffic is
    /// backend-shaped — in-process queues vs. channels — so per-node
    /// [`RuntimeStats::bytes_sent`] via [`Transport::node_stats`] is the
    /// comparable per-node measure.)
    pub bytes_sent: u64,
    /// Messages re-sent by the reliable-delivery layer (0 without a fault
    /// plan).
    pub retransmits: u64,
    /// Duplicate arrivals dropped by receiver-side dedup (0 without a
    /// fault plan).
    pub dup_drops: u64,
    /// Faults the chaos engine injected — drops, duplicates, delays,
    /// reorders, partition and crash drops (0 without a fault plan).
    pub faults_injected: u64,
}

/// Borrowed view of a client runtime handed out by [`Transport::client`].
///
/// Backends whose runtimes live on the driving thread (sim, socket) hand out
/// plain references; the threaded backend's runtimes are owned by per-client
/// worker threads behind mutexes, so its guard holds the client's lock for
/// the duration of the borrow.  Dereferences to [`NodeRuntime`], so call
/// sites read through it unchanged — but holding a guard across a blocking
/// wait would stall that client's worker thread; drop it promptly.
pub enum ClientRef<'a> {
    /// Runtime directly owned by the transport on the driving thread.
    Direct(&'a NodeRuntime),
    /// Runtime shared with a per-client worker thread; holds its lock.
    Locked(std::sync::MutexGuard<'a, NodeRuntime>),
}

impl std::ops::Deref for ClientRef<'_> {
    type Target = NodeRuntime;

    fn deref(&self) -> &NodeRuntime {
        match self {
            ClientRef::Direct(runtime) => runtime,
            ClientRef::Locked(guard) => guard,
        }
    }
}

/// Mutable counterpart of [`ClientRef`], handed out by
/// [`Transport::client_mut`].
pub enum ClientRefMut<'a> {
    /// Runtime directly owned by the transport on the driving thread.
    Direct(&'a mut NodeRuntime),
    /// Runtime shared with a per-client worker thread; holds its lock.
    Locked(std::sync::MutexGuard<'a, NodeRuntime>),
}

impl std::ops::Deref for ClientRefMut<'_> {
    type Target = NodeRuntime;

    fn deref(&self) -> &NodeRuntime {
        match self {
            ClientRefMut::Direct(runtime) => runtime,
            ClientRefMut::Locked(guard) => guard,
        }
    }
}

impl std::ops::DerefMut for ClientRefMut<'_> {
    fn deref_mut(&mut self) -> &mut NodeRuntime {
        match self {
            ClientRefMut::Direct(runtime) => runtime,
            ClientRefMut::Locked(guard) => guard,
        }
    }
}

/// A pluggable cluster backend: hosts the node runtimes and moves fabric
/// operations between them.
///
/// Implementations provide *mechanism* (where runtimes live, how operations
/// travel, what "time" means); [`Cluster`] provides the uniform *policy* API
/// (sends, typed completion waits, snapshots) on top.
pub trait Transport {
    /// Short backend name for diagnostics ("simnet", "threads").
    fn backend_name(&self) -> &'static str;

    /// Number of nodes including the clients (ranks `0..client_count()`).
    fn node_count(&self) -> usize;

    /// Number of driver-side client runtimes (ranks `0..client_count()`).
    /// Single-client transports keep the default of 1.
    fn client_count(&self) -> usize {
        1
    }

    /// A client runtime.  On backends whose runtimes are owned by worker
    /// threads the returned guard holds that client's lock — see
    /// [`ClientRef`].
    fn client(&self, id: ClientId) -> ClientRef<'_>;

    /// Mutable client runtime (same locking semantics as
    /// [`Transport::client`]).
    fn client_mut(&mut self, id: ClientId) -> ClientRefMut<'_>;

    /// Hand the transport the cluster's sharded claim table.  Backends whose
    /// worker threads deliver completions off the driving thread deposit
    /// straight into the shards (their [`Transport::take_completions`] then
    /// returns nothing); the default is a no-op and completions keep flowing
    /// through `take_completions`.
    fn attach_claims(&mut self, _claims: &Arc<ClaimShards>) {}

    /// Predeploy a native Active-Message handler on every node, assigning
    /// consistent handler ids cluster-wide.
    fn deploy_am(&mut self, name: &str, handler: NativeAmHandler) -> Result<()>;

    /// Pick up operations client `id` has posted and move them into the
    /// fabric.
    fn flush_client(&mut self, id: ClientId) -> Result<()>;

    /// Advance the transport by one unit of progress (one simulated event,
    /// or one received envelope).  Returns `false` when nothing happened —
    /// the queue was empty or the poll timed out.
    fn step(&mut self) -> Result<bool>;

    /// How many consecutive idle [`Transport::step`]s mean "quiescent".  The
    /// simulator's queue emptiness is definitive (1); the threaded backend
    /// needs a grace period because work may be mid-flight on another thread.
    fn idle_grace(&self) -> u32 {
        1
    }

    /// Drain completions (GET results, X-RDMA results, confirmed-PUT acks)
    /// that reached client `id`.
    fn take_completions(&mut self, id: ClientId) -> Vec<Completion>;

    /// The transport's clock in nanoseconds: virtual time for the simulated
    /// backend, wall-clock time for the threaded one.  Per-handle deadlines
    /// in a [`CompletionSet`] are measured on this clock.  Transports
    /// without a meaningful clock may return 0 (deadlines then never expire
    /// by time, only by quiescence).
    fn now_nanos(&self) -> u64 {
        0
    }

    /// Messages the reliable-delivery layer still holds unacknowledged,
    /// summed across all nodes (0 without a fault plan).  The cluster's wait
    /// loops consult this so a quiet-but-retransmitting fabric is never
    /// mistaken for a quiescent one.
    fn unacked_total(&self) -> u64 {
        0
    }

    /// Earliest armed retransmission deadline across all nodes, on the
    /// [`Transport::now_nanos`] clock (`None` when nothing is outstanding).
    /// Implement together with [`Transport::unacked_total`]: the wait loops
    /// treat unacked frames as busy only while a deadline is armed.
    fn next_rel_deadline(&self) -> Option<u64> {
        None
    }

    /// Read `len` bytes at `addr` from node `rank`'s memory.
    fn read_memory(&mut self, rank: usize, addr: u64, len: usize) -> Result<Vec<u8>>;

    /// Write into node `rank`'s memory (scenario setup: seeding counters,
    /// installing data shards).
    fn write_memory(&mut self, rank: usize, addr: u64, data: &[u8]) -> Result<()>;

    /// Snapshot node `rank`'s runtime counters.
    fn node_stats(&mut self, rank: usize) -> Result<RuntimeStats>;

    /// Fabric-level counters (deliveries, drops, bytes).
    fn metrics(&self) -> TransportMetrics;

    /// Reliability counters of one node — retransmits, dup drops,
    /// out-of-order parks (`None` without a fault plan).
    fn node_reliability(&self, _rank: usize) -> Option<RelMetrics> {
        None
    }

    /// Injected-fault counters of the chaos engine (`None` without a fault
    /// plan).
    fn chaos_stats(&self) -> Option<tc_chaos::ChaosStats> {
        None
    }

    /// Ranks whose links have failed *terminally* — the peer is dead and no
    /// recovery is pending (either self-healing is off, or its respawn
    /// budget is exhausted).  Ops pinned to such a rank can never complete;
    /// `wait_any` surfaces them as [`Ready::PeerLost`] instead of riding to
    /// the quiescence timeout.  Empty for in-process backends, which cannot
    /// lose a peer.
    fn failed_ranks(&self) -> Vec<usize> {
        Vec::new()
    }

    /// Per-link reliability health rows as `(owning rank, health)` pairs:
    /// SRTT/RTTVAR estimate, current RTO, unacked frames, consecutive silent
    /// backoff rounds.  Empty without a fault plan (the reliable layer is
    /// what keeps the estimators).
    fn link_health(&self) -> Vec<(u32, LinkHealth)> {
        Vec::new()
    }

    /// Tear the backend down (join threads).  Idempotent; the default is a
    /// no-op for in-process backends.
    fn shutdown(&mut self) {}
}

impl Transport for Box<dyn Transport> {
    fn backend_name(&self) -> &'static str {
        (**self).backend_name()
    }
    fn node_count(&self) -> usize {
        (**self).node_count()
    }
    fn client_count(&self) -> usize {
        (**self).client_count()
    }
    fn client(&self, id: ClientId) -> ClientRef<'_> {
        (**self).client(id)
    }
    fn client_mut(&mut self, id: ClientId) -> ClientRefMut<'_> {
        (**self).client_mut(id)
    }
    fn attach_claims(&mut self, claims: &Arc<ClaimShards>) {
        (**self).attach_claims(claims)
    }
    fn deploy_am(&mut self, name: &str, handler: NativeAmHandler) -> Result<()> {
        (**self).deploy_am(name, handler)
    }
    fn flush_client(&mut self, id: ClientId) -> Result<()> {
        (**self).flush_client(id)
    }
    fn step(&mut self) -> Result<bool> {
        (**self).step()
    }
    fn idle_grace(&self) -> u32 {
        (**self).idle_grace()
    }
    fn take_completions(&mut self, id: ClientId) -> Vec<Completion> {
        (**self).take_completions(id)
    }
    fn now_nanos(&self) -> u64 {
        (**self).now_nanos()
    }
    fn unacked_total(&self) -> u64 {
        (**self).unacked_total()
    }
    fn next_rel_deadline(&self) -> Option<u64> {
        (**self).next_rel_deadline()
    }
    fn read_memory(&mut self, rank: usize, addr: u64, len: usize) -> Result<Vec<u8>> {
        (**self).read_memory(rank, addr, len)
    }
    fn write_memory(&mut self, rank: usize, addr: u64, data: &[u8]) -> Result<()> {
        (**self).write_memory(rank, addr, data)
    }
    fn node_stats(&mut self, rank: usize) -> Result<RuntimeStats> {
        (**self).node_stats(rank)
    }
    fn metrics(&self) -> TransportMetrics {
        (**self).metrics()
    }
    fn node_reliability(&self, rank: usize) -> Option<RelMetrics> {
        (**self).node_reliability(rank)
    }
    fn chaos_stats(&self) -> Option<tc_chaos::ChaosStats> {
        (**self).chaos_stats()
    }
    fn failed_ranks(&self) -> Vec<usize> {
        (**self).failed_ranks()
    }
    fn link_health(&self) -> Vec<(u32, LinkHealth)> {
        (**self).link_health()
    }
    fn shutdown(&mut self) {
        (**self).shutdown()
    }
}

/// A handle that can be waited on through [`Cluster::wait`], claiming a typed
/// value from the sharded [`ClaimShards`] table of client completions.  A
/// handle locks only its own client's shard, so claims on one client never
/// contend with another client's completion traffic.
pub trait CompletionHandle {
    /// What the completed operation yields.
    type Output;

    /// Remove and return this handle's completion from its client's shard,
    /// if present.
    fn try_claim(&self, claims: &ClaimShards) -> Option<Self::Output>;

    /// Arrival order of this handle's completion, if it is pending — used
    /// by [`CompletionSet`] for first-arrived fairness.
    fn ready_at(&self, claims: &ClaimShards) -> Option<u64>;

    /// Human-readable description for timeout errors.
    fn describe(&self) -> String;
}

/// Typed handle for a posted one-sided GET; waiting yields the fetched bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GetHandle {
    client: ClientId,
    request: RequestId,
    /// The server rank the GET targets — pins the handle to a peer so
    /// `wait_any` can fail it fast when that peer is lost.
    target: usize,
}

impl GetHandle {
    /// The underlying request id.
    pub fn request(&self) -> RequestId {
        self.request
    }

    /// The client the GET was posted from (and whose completion stream the
    /// reply arrives on).  Request ids are per-client, so routing needs both.
    pub fn client(&self) -> ClientId {
        self.client
    }

    /// The server rank this GET targets.
    pub fn target(&self) -> usize {
        self.target
    }
}

impl CompletionHandle for GetHandle {
    type Output = Bytes;

    fn try_claim(&self, claims: &ClaimShards) -> Option<Bytes> {
        claims
            .shard(self.client)
            .claim_get(self.client, self.request)
    }

    fn ready_at(&self, claims: &ClaimShards) -> Option<u64> {
        claims
            .shard(self.client)
            .get_arrival(self.client, self.request)
    }

    fn describe(&self) -> String {
        format!(
            "GET completion (client {}, request {})",
            self.client.0, self.request.0
        )
    }
}

/// Typed handle for an X-RDMA result mailbox slot; waiting yields the result
/// value an ifunc returned with `tc_return_result`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResultHandle {
    client: ClientId,
    slot: u64,
}

impl ResultHandle {
    /// A handle for an explicitly chosen mailbox slot on the primary client
    /// (see [`ResultHandle::for_client_slot`] for other clients).
    ///
    /// **Contract:** slots named this way share the one per-client mailbox
    /// with slots handed out by [`Cluster::result_slot`].  To keep the
    /// allocator from colliding with a manually chosen slot, reserve it
    /// first with [`Cluster::reserve_result_slot`] (which also returns the
    /// handle) — the allocator then skips it.  Unreserved manual slots are
    /// only safe if the driver never calls `result_slot()`.
    pub fn for_slot(slot: u64) -> Self {
        ResultHandle {
            client: ClientId::PRIMARY,
            slot,
        }
    }

    /// A handle for an explicitly chosen mailbox slot on client `client`.
    /// Each client owns an independent mailbox, so equal slot numbers on
    /// different clients never collide.
    pub fn for_client_slot(client: ClientId, slot: u64) -> Self {
        ResultHandle { client, slot }
    }

    /// The mailbox slot this handle waits on (encode it into the ifunc
    /// payload so the remote side knows where to deliver).
    pub fn slot(&self) -> u64 {
        self.slot
    }

    /// The client whose mailbox the result arrives in.
    pub fn client(&self) -> ClientId {
        self.client
    }

    /// Address of the slot in the owning client's result mailbox.
    pub fn mailbox_addr(&self) -> u64 {
        result_slot_addr(self.slot)
    }
}

impl CompletionHandle for ResultHandle {
    type Output = u64;

    fn try_claim(&self, claims: &ClaimShards) -> Option<u64> {
        claims
            .shard(self.client)
            .claim_result(self.client, self.slot)
    }

    fn ready_at(&self, claims: &ClaimShards) -> Option<u64> {
        claims
            .shard(self.client)
            .result_arrival(self.client, self.slot)
    }

    fn describe(&self) -> String {
        format!(
            "X-RDMA result (client {}, mailbox slot {})",
            self.client.0, self.slot
        )
    }
}

/// A heterogeneous cluster driven through a pluggable [`Transport`].
///
/// Ranks `0..client_count()` are driver-side clients; ranks
/// `client_count()..node_count()` are servers.  All sends originate at a
/// client (servers communicate through ifunc follow-on actions), completions
/// surface as typed handles routed to the posting client, and node state is
/// read back through the transport so the same scenario runs on any backend.
/// Single-client clusters (the default) keep the historical layout: client
/// at rank 0, servers at ranks `1..=server_count()`.
pub struct Cluster<T: Transport> {
    transport: T,
    /// The sharded completion table, shared with the transport (worker
    /// threads of the threaded backend deposit into it directly).
    claims: Arc<ClaimShards>,
    /// Per-client result-slot allocator state (indexed by client id).
    next_result_slot: Vec<u64>,
    reserved_slots: Vec<std::collections::HashSet<u64>>,
}

impl<T: Transport> std::fmt::Debug for Cluster<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("backend", &self.transport.backend_name())
            .field("nodes", &self.transport.node_count())
            .field("pending_completions", &self.claims.len())
            .finish()
    }
}

/// How many consecutive idle transport steps the wait loops tolerate while
/// the reliable-delivery layer still reports unacked frames, before giving
/// up anyway.  Both built-in transports keep reporting progress while their
/// retransmission timers are armed, so this only bounds a transport that is
/// wedged (or a third-party transport with incomplete accounting).
const REL_STALL_LIMIT: u32 = 64;

/// Shared quiescence tracker of the wait loops: `grace` idle steps in a row
/// mean quiescent — but an idle step observed while the reliability layer
/// holds unacked frames does not count (bounded by [`REL_STALL_LIMIT`]).
struct Idleness {
    grace: u32,
    idle: u32,
    rel_stall: u32,
}

impl Idleness {
    fn new(grace: u32) -> Self {
        Idleness {
            grace,
            idle: 0,
            rel_stall: 0,
        }
    }

    /// Record one driven step.  Returns true when the transport should be
    /// considered quiescent (give up waiting).
    fn note<T: Transport>(&mut self, transport: &T, progressed: bool) -> bool {
        if progressed {
            self.idle = 0;
            self.rel_stall = 0;
            return false;
        }
        // A retransmitting link is busy, not idle — but only while a
        // retransmission deadline is actually armed: unacked frames with no
        // armed timer (`next_rel_deadline() == None`) can never be
        // re-driven, so waiting on them would just delay the timeout.
        if transport.unacked_total() > 0
            && transport.next_rel_deadline().is_some()
            && self.rel_stall < REL_STALL_LIMIT
        {
            self.rel_stall += 1;
            self.idle = 0;
            return false;
        }
        self.idle += 1;
        self.idle >= self.grace
    }
}

impl<T: Transport> Cluster<T> {
    /// Wrap an already-constructed transport.  Prefer [`ClusterBuilder`].
    pub fn new(mut transport: T) -> Self {
        let clients = transport.client_count().max(1);
        let claims = Arc::new(ClaimShards::new(clients));
        transport.attach_claims(&claims);
        Cluster {
            transport,
            claims,
            next_result_slot: vec![0; clients],
            reserved_slots: vec![std::collections::HashSet::new(); clients],
        }
    }

    /// The underlying transport (backend-specific inspection: timing logs,
    /// virtual time, thread metrics).
    pub fn transport(&self) -> &T {
        &self.transport
    }

    /// Mutable access to the underlying transport.
    pub fn transport_mut(&mut self) -> &mut T {
        &mut self.transport
    }

    /// Short backend name ("simnet", "threads").
    pub fn backend_name(&self) -> &'static str {
        self.transport.backend_name()
    }

    /// Number of nodes including the clients.
    pub fn node_count(&self) -> usize {
        self.transport.node_count()
    }

    /// Number of driver-side client runtimes (ranks `0..client_count()`).
    pub fn client_count(&self) -> usize {
        self.transport.client_count()
    }

    /// Iterator over every client id, `0..client_count()`.
    pub fn client_ids(&self) -> impl Iterator<Item = ClientId> {
        (0..self.transport.client_count()).map(ClientId)
    }

    /// Number of server nodes.
    pub fn server_count(&self) -> usize {
        self.transport.node_count() - self.transport.client_count()
    }

    /// Fabric rank of the first server (servers occupy ranks
    /// `first_server_rank()..node_count()`; 1 on a single-client cluster).
    pub fn first_server_rank(&self) -> usize {
        self.transport.client_count()
    }

    /// Fabric rank of server `idx` (0-based server index).  Use this instead
    /// of `idx + 1` — server ranks start *after* the client ranks.
    pub fn server_rank(&self, idx: usize) -> usize {
        self.transport.client_count() + idx
    }

    /// The primary client's runtime.  On the threaded backend the returned
    /// guard holds that client's lock — drop it before driving the cluster.
    pub fn client(&self) -> ClientRef<'_> {
        self.transport.client(ClientId::PRIMARY)
    }

    /// Mutable primary-client runtime (escape hatch for source-side
    /// operations the high-level API does not cover).
    pub fn client_mut(&mut self) -> ClientRefMut<'_> {
        self.transport.client_mut(ClientId::PRIMARY)
    }

    /// The runtime of client `id` (locking semantics of
    /// [`Cluster::client`]).
    pub fn client_runtime(&self, id: ClientId) -> ClientRef<'_> {
        self.transport.client(id)
    }

    /// Mutable runtime of client `id`.
    pub fn client_runtime_mut(&mut self, id: ClientId) -> ClientRefMut<'_> {
        self.transport.client_mut(id)
    }

    // --- scenario setup -----------------------------------------------------

    /// Register an ifunc library on the primary client, returning its handle.
    pub fn register_ifunc(&mut self, library: IfuncLibrary) -> IfuncHandle {
        self.register_ifunc_on(ClientId::PRIMARY, library)
    }

    /// Register an ifunc library on client `client`.  Handles are
    /// per-runtime: a library meant to be sent by several clients must be
    /// registered on each.
    pub fn register_ifunc_on(&mut self, client: ClientId, library: IfuncLibrary) -> IfuncHandle {
        self.transport.client_mut(client).register_library(library)
    }

    /// Create a bitcode-representation message for a library registered on
    /// the primary client.
    pub fn bitcode_message(&self, handle: IfuncHandle, payload: Vec<u8>) -> Result<IfuncMessage> {
        self.bitcode_message_on(ClientId::PRIMARY, handle, payload)
    }

    /// Create a bitcode-representation message for a library registered on
    /// client `client`.
    pub fn bitcode_message_on(
        &self,
        client: ClientId,
        handle: IfuncHandle,
        payload: Vec<u8>,
    ) -> Result<IfuncMessage> {
        self.transport
            .client(client)
            .create_bitcode_message(handle, payload)
    }

    /// Create a binary-representation message targeted at a triple (primary
    /// client).
    pub fn binary_message(
        &self,
        handle: IfuncHandle,
        target_triple: &str,
        payload: Vec<u8>,
    ) -> Result<IfuncMessage> {
        self.binary_message_on(ClientId::PRIMARY, handle, target_triple, payload)
    }

    /// Create a binary-representation message for a library registered on
    /// client `client`.
    pub fn binary_message_on(
        &self,
        client: ClientId,
        handle: IfuncHandle,
        target_triple: &str,
        payload: Vec<u8>,
    ) -> Result<IfuncMessage> {
        self.transport
            .client(client)
            .create_binary_message(handle, target_triple, payload)
    }

    /// Predeploy a native Active-Message handler on every node (the AM
    /// baseline requires code presence everywhere).
    pub fn deploy_am(&mut self, name: &str, handler: NativeAmHandler) -> Result<()> {
        self.transport.deploy_am(name, handler)
    }

    /// Write a u64 into a node's memory (seed counters, install tables).
    pub fn write_u64(&mut self, rank: usize, addr: u64, value: u64) -> Result<()> {
        self.transport
            .write_memory(rank, addr, &value.to_le_bytes())
    }

    /// Write bytes into a node's memory.
    pub fn write_memory(&mut self, rank: usize, addr: u64, data: &[u8]) -> Result<()> {
        self.transport.write_memory(rank, addr, data)
    }

    // --- sends --------------------------------------------------------------

    /// Send an ifunc message from the primary client to server `dst`,
    /// applying the sender-side code cache.  Returns the bytes that actually
    /// travelled.
    pub fn send_ifunc(&mut self, message: &IfuncMessage, dst: usize) -> Result<usize> {
        self.send_ifunc_from(ClientId::PRIMARY, message, dst)
    }

    /// Send an ifunc message from client `client` to server `dst`.  Each
    /// client keeps its own sender-side code cache, so the first send per
    /// (client, destination) ships the code.
    pub fn send_ifunc_from(
        &mut self,
        client: ClientId,
        message: &IfuncMessage,
        dst: usize,
    ) -> Result<usize> {
        let bytes = self
            .transport
            .client_mut(client)
            .send_ifunc(message, WorkerAddr(dst as u32));
        self.transport.flush_client(client)?;
        Ok(bytes)
    }

    /// Send an Active Message from the primary client to a predeployed
    /// handler on `dst`.
    pub fn send_am(
        &mut self,
        handler: &str,
        dst: usize,
        payload: impl Into<Bytes>,
    ) -> Result<usize> {
        self.send_am_from(ClientId::PRIMARY, handler, dst, payload)
    }

    /// Send an Active Message from client `client`.
    pub fn send_am_from(
        &mut self,
        client: ClientId,
        handler: &str,
        dst: usize,
        payload: impl Into<Bytes>,
    ) -> Result<usize> {
        let size =
            self.transport
                .client_mut(client)
                .send_am(handler, WorkerAddr(dst as u32), payload)?;
        self.transport.flush_client(client)?;
        Ok(size)
    }

    /// Post a one-sided PUT into `dst`'s memory from the primary client.
    /// PUTs have no completion event in this model; the returned id
    /// identifies the posted request.  Passing a [`Bytes`] view makes the
    /// post zero-copy end to end.
    pub fn put(&mut self, dst: usize, addr: u64, data: impl Into<Bytes>) -> Result<RequestId> {
        self.put_from(ClientId::PRIMARY, dst, addr, data)
    }

    /// Post a one-sided PUT from client `client`.
    pub fn put_from(
        &mut self,
        client: ClientId,
        dst: usize,
        addr: u64,
        data: impl Into<Bytes>,
    ) -> Result<RequestId> {
        let request =
            self.transport
                .client_mut(client)
                .post_put(WorkerAddr(dst as u32), addr, data);
        self.transport.flush_client(client)?;
        Ok(request)
    }

    /// Post a *confirmed* one-sided PUT into `dst`'s memory from the primary
    /// client: the destination applies the write and acknowledges it through
    /// the transport.  Wait on the returned [`PutHandle`] (or register it in
    /// a [`CompletionSet`]) for transport-confirmed delivery.
    pub fn put_confirmed(
        &mut self,
        dst: usize,
        addr: u64,
        data: impl Into<Bytes>,
    ) -> Result<PutHandle> {
        self.put_confirmed_from(ClientId::PRIMARY, dst, addr, data)
    }

    /// Post a confirmed PUT from client `client`.
    pub fn put_confirmed_from(
        &mut self,
        client: ClientId,
        dst: usize,
        addr: u64,
        data: impl Into<Bytes>,
    ) -> Result<PutHandle> {
        let request = self.transport.client_mut(client).post_put_confirmed(
            WorkerAddr(dst as u32),
            addr,
            data,
        );
        self.transport.flush_client(client)?;
        Ok(PutHandle {
            client,
            request,
            target: dst,
        })
    }

    /// Post a one-sided GET against `dst` from the primary client, returning
    /// a typed handle to wait on with [`Cluster::wait`].
    pub fn get(&mut self, dst: usize, addr: u64, len: u64) -> Result<GetHandle> {
        self.get_from(ClientId::PRIMARY, dst, addr, len)
    }

    /// Post (and flush) a one-sided GET from client `client`.
    pub fn get_from(
        &mut self,
        client: ClientId,
        dst: usize,
        addr: u64,
        len: u64,
    ) -> Result<GetHandle> {
        let handle = self.post_get_from(client, dst, addr, len);
        self.transport.flush_client(client)?;
        Ok(handle)
    }

    /// Post a one-sided GET *without* flushing it into the fabric.  A
    /// pipelined driver filling a deep window posts the whole burst, then
    /// calls [`Cluster::flush`] once — paying the fabric hand-off per batch
    /// instead of per operation.
    pub fn post_get(&mut self, dst: usize, addr: u64, len: u64) -> GetHandle {
        self.post_get_from(ClientId::PRIMARY, dst, addr, len)
    }

    /// Post a one-sided GET from client `client` without flushing.
    pub fn post_get_from(
        &mut self,
        client: ClientId,
        dst: usize,
        addr: u64,
        len: u64,
    ) -> GetHandle {
        let request = self
            .transport
            .client_mut(client)
            .post_get(WorkerAddr(dst as u32), addr, len);
        GetHandle {
            client,
            request,
            target: dst,
        }
    }

    /// Post a confirmed PUT *without* flushing (see [`Cluster::post_get`]).
    pub fn post_put_confirmed(
        &mut self,
        dst: usize,
        addr: u64,
        data: impl Into<Bytes>,
    ) -> PutHandle {
        self.post_put_confirmed_from(ClientId::PRIMARY, dst, addr, data)
    }

    /// Post a confirmed PUT from client `client` without flushing.
    pub fn post_put_confirmed_from(
        &mut self,
        client: ClientId,
        dst: usize,
        addr: u64,
        data: impl Into<Bytes>,
    ) -> PutHandle {
        let request = self.transport.client_mut(client).post_put_confirmed(
            WorkerAddr(dst as u32),
            addr,
            data,
        );
        PutHandle {
            client,
            request,
            target: dst,
        }
    }

    /// Move everything the primary client posted-but-unflushed into the
    /// fabric (the batch counterpart of the auto-flush in [`Cluster::get`] /
    /// [`Cluster::put`]).
    pub fn flush(&mut self) -> Result<()> {
        self.transport.flush_client(ClientId::PRIMARY)
    }

    /// Flush client `client`'s posted-but-unflushed operations.
    pub fn flush_from(&mut self, client: ClientId) -> Result<()> {
        self.transport.flush_client(client)
    }

    /// Flush every client's staged operations (multi-client drivers that
    /// post across several clients before driving the transport).
    pub fn flush_all(&mut self) -> Result<()> {
        for c in 0..self.transport.client_count() {
            self.transport.flush_client(ClientId(c))?;
        }
        Ok(())
    }

    /// Allocate a fresh X-RDMA result-mailbox slot on the primary client.
    /// Encode [`ResultHandle::slot`] into the ifunc payload, send, then
    /// [`Cluster::wait`] on the handle.  Slots reserved through
    /// [`Cluster::reserve_result_slot`] are skipped, so manually constructed
    /// handles never collide with allocated ones.
    pub fn result_slot(&mut self) -> ResultHandle {
        self.result_slot_on(ClientId::PRIMARY)
    }

    /// Allocate a fresh result-mailbox slot on client `client`.  Allocators
    /// are per-client: each client owns an independent mailbox, so two
    /// clients receiving results into equal slot numbers never interfere.
    pub fn result_slot_on(&mut self, client: ClientId) -> ResultHandle {
        let next = &mut self.next_result_slot[client.0];
        let reserved = &self.reserved_slots[client.0];
        while reserved.contains(next) {
            *next += 1;
        }
        let slot = *next;
        *next += 1;
        ResultHandle { client, slot }
    }

    /// Reserve an explicitly chosen mailbox slot on the primary client,
    /// returning its handle.  The [`Cluster::result_slot`] allocator will
    /// never hand out a reserved slot, which is the safe way to mix manual
    /// ([`ResultHandle::for_slot`]) and allocated slots in one driver.
    pub fn reserve_result_slot(&mut self, slot: u64) -> ResultHandle {
        self.reserve_result_slot_on(ClientId::PRIMARY, slot)
    }

    /// Reserve an explicitly chosen mailbox slot on client `client`.
    /// Reservations are per-client and never affect another client's
    /// allocator.
    pub fn reserve_result_slot_on(&mut self, client: ClientId, slot: u64) -> ResultHandle {
        self.reserved_slots[client.0].insert(slot);
        ResultHandle { client, slot }
    }

    // --- completion and progress --------------------------------------------

    fn absorb_completions(&mut self) {
        // On transports whose worker threads deposit into the shards
        // directly (post-`attach_claims`), `take_completions` returns
        // nothing and this is a no-op sweep.
        for c in 0..self.transport.client_count() {
            let client = ClientId(c);
            let completions = self.transport.take_completions(client);
            if !completions.is_empty() {
                self.claims.absorb(client, completions);
            }
        }
    }

    /// Drive the transport until `handle`'s completion arrives, returning its
    /// typed value.  Gives up with [`CoreError::WaitTimeout`] once the
    /// transport stays quiescent for its grace period — where quiescence
    /// also requires the reliable-delivery layer to hold no unacked frames
    /// ([`Transport::unacked_total`]), so a silent-but-retransmitting link
    /// under a fault plan is never mistaken for idle.
    pub fn wait<H: CompletionHandle>(&mut self, handle: &H) -> Result<H::Output> {
        let mut idleness = Idleness::new(self.transport.idle_grace());
        loop {
            self.absorb_completions();
            if let Some(out) = handle.try_claim(&self.claims) {
                return Ok(out);
            }
            let progressed = self.transport.step()?;
            if idleness.note(&self.transport, progressed) {
                return Err(CoreError::WaitTimeout {
                    what: handle.describe(),
                });
            }
        }
    }

    /// Check for `handle`'s completion without driving the transport.
    pub fn try_claim<H: CompletionHandle>(&mut self, handle: &H) -> Option<H::Output> {
        self.absorb_completions();
        handle.try_claim(&self.claims)
    }

    /// Drive the transport until any handle registered in `set` resolves:
    /// first ready wins (ties broken by completion arrival order), expired
    /// per-handle deadlines surface as [`Ready::Deadline`].  The resolved
    /// registration is removed from the set.
    ///
    /// When the transport goes quiescent with registrations outstanding, a
    /// deadline-armed registration (earliest first) resolves as
    /// [`Ready::Deadline`] — nothing can beat the deadline anymore — and
    /// only a set with no armed deadlines fails with
    /// [`CoreError::WaitTimeout`].
    pub fn wait_any(&mut self, set: &mut CompletionSet) -> Result<(CompletionToken, Ready)> {
        if set.is_empty() {
            return Err(CoreError::WaitTimeout {
                what: "wait_any on an empty completion set".into(),
            });
        }
        let mut idleness = Idleness::new(self.transport.idle_grace());
        loop {
            self.absorb_completions();
            if let Some(ready) = set.claim_earliest(&self.claims) {
                return Ok(ready);
            }
            // A handle pinned to a terminally failed rank can never
            // complete; fail it fast instead of riding to the quiescence
            // timeout.  (A rank mid-recovery is not in `failed_ranks`.)
            let failed = self.transport.failed_ranks();
            if !failed.is_empty() {
                if let Some((token, rank)) = set.take_peer_lost(&failed) {
                    return Ok((token, Ready::PeerLost(rank as u32)));
                }
            }
            if set.has_deadlines() {
                let now = self.transport.now_nanos();
                set.resolve_deadlines(now);
                if let Some(token) = set.take_expired(now) {
                    return Ok((token, Ready::Deadline));
                }
            }
            let progressed = self.transport.step()?;
            if idleness.note(&self.transport, progressed) {
                if let Some(token) = set.take_any_deadlined() {
                    return Ok((token, Ready::Deadline));
                }
                return Err(CoreError::WaitTimeout {
                    what: set.describe(),
                });
            }
        }
    }

    /// Drive the transport until every registration in `set` has resolved,
    /// returning `(token, outcome)` pairs in resolution order.
    pub fn wait_all(&mut self, set: &mut CompletionSet) -> Result<Vec<(CompletionToken, Ready)>> {
        let mut out = Vec::with_capacity(set.len());
        while !set.is_empty() {
            out.push(self.wait_any(set)?);
        }
        Ok(out)
    }

    /// Non-blocking check of `set`: absorbs pending completions and resolves
    /// at most one registration (ready completion first, then expired
    /// deadline) without driving the transport.
    pub fn poll_any(&mut self, set: &mut CompletionSet) -> Option<(CompletionToken, Ready)> {
        self.absorb_completions();
        if let Some(ready) = set.claim_earliest(&self.claims) {
            return Some(ready);
        }
        if !set.has_deadlines() {
            return None;
        }
        let now = self.transport.now_nanos();
        set.resolve_deadlines(now);
        set.take_expired(now).map(|t| (t, Ready::Deadline))
    }

    /// Number of arrived-but-unclaimed completions buffered client-side.
    pub fn pending_completions(&self) -> usize {
        self.claims.len()
    }

    /// Drive the transport until it goes quiescent or `max_steps` progress
    /// steps have been made.  Returns the number of steps taken.
    pub fn run_until_idle(&mut self, max_steps: u64) -> Result<u64> {
        let mut idleness = Idleness::new(self.transport.idle_grace());
        let mut steps = 0u64;
        while steps < max_steps {
            let progressed = self.transport.step()?;
            if progressed {
                steps += 1;
            }
            if idleness.note(&self.transport, progressed) {
                break;
            }
        }
        Ok(steps)
    }

    /// Drive the transport until at least `count` *new* completions are
    /// pending (or quiescence / `max_steps`), then return them in arrival
    /// order.
    ///
    /// Returned completions are **not** consumed: they stay claimable, so a
    /// later [`Cluster::wait`] on a handle whose completion was already
    /// returned here still succeeds instead of timing out.  Repeated calls
    /// return only completions that arrived since the previous call.
    pub fn run_until_completions(
        &mut self,
        count: usize,
        max_steps: u64,
    ) -> Result<Vec<Completion>> {
        let mut idleness = Idleness::new(self.transport.idle_grace());
        let mut steps = 0u64;
        loop {
            self.absorb_completions();
            if self.claims.fresh_len() >= count || steps >= max_steps {
                break;
            }
            let progressed = self.transport.step()?;
            if progressed {
                steps += 1;
            }
            if idleness.note(&self.transport, progressed) {
                break;
            }
        }
        Ok(self.claims.take_fresh())
    }

    // --- observation --------------------------------------------------------

    /// Read a u64 from a node's memory through the transport.  A transport
    /// that yields fewer than 8 bytes produces a typed
    /// [`CoreError::ShortRead`] instead of a panic.
    pub fn read_u64(&mut self, rank: usize, addr: u64) -> Result<u64> {
        let bytes = self.transport.read_memory(rank, addr, 8)?;
        let bytes8: [u8; 8] =
            bytes
                .get(..8)
                .and_then(|s| s.try_into().ok())
                .ok_or(CoreError::ShortRead {
                    rank,
                    addr,
                    wanted: 8,
                    got: bytes.len(),
                })?;
        Ok(u64::from_le_bytes(bytes8))
    }

    /// Read bytes from a node's memory through the transport.
    pub fn read_memory(&mut self, rank: usize, addr: u64, len: usize) -> Result<Vec<u8>> {
        self.transport.read_memory(rank, addr, len)
    }

    /// Snapshot a node's runtime counters through the transport.
    pub fn stats(&mut self, rank: usize) -> Result<RuntimeStats> {
        self.transport.node_stats(rank)
    }

    /// Fabric-level metrics (deliveries, drops, bytes).
    pub fn metrics(&self) -> TransportMetrics {
        self.transport.metrics()
    }

    /// Per-link reliability health as `(owning rank, health)` rows: the
    /// SRTT/RTTVAR estimate, current RTO, unacked frames, and consecutive
    /// silent backoff rounds of every link that has carried reliable
    /// traffic.  Empty without a fault plan.  Render with
    /// `report::render_link_health` for the operator's table view.
    pub fn link_health(&self) -> Vec<(u32, LinkHealth)> {
        self.transport.link_health()
    }

    /// Ranks whose links have terminally failed (dead peer, no recovery
    /// pending).  Empty on healthy clusters and on in-process backends.
    pub fn failed_ranks(&self) -> Vec<usize> {
        self.transport.failed_ranks()
    }

    /// Tear the cluster down, returning the transport for post-mortem
    /// inspection.
    pub fn shutdown(mut self) -> T {
        self.transport.shutdown();
        self.transport
    }

    /// Unwrap into the transport *without* shutting it down (re-wrapping,
    /// boxing).  Any buffered completions are dropped.
    pub fn into_transport(self) -> T {
        self.transport
    }
}

/// Builder for a [`Cluster`]: platform, node count, target triples, JIT
/// optimisation level, backend.
///
/// The platform always provides the fabric/CPU calibration for the simulated
/// backend and the default target triples for both backends.
#[derive(Debug, Clone)]
pub struct ClusterBuilder {
    platform: Platform,
    clients: usize,
    servers: usize,
    client_triple: Option<TargetTriple>,
    server_triple: Option<TargetTriple>,
    opt_level: OptLevel,
    fault_plan: Option<tc_chaos::FaultPlan>,
    rel_config: Option<RelConfig>,
    tuning: thread_transport::ThreadTuning,
    socket: socket::SocketConfig,
}

impl Default for ClusterBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl ClusterBuilder {
    /// A builder for the Thor Xeon+BF2 platform with one server.
    pub fn new() -> Self {
        ClusterBuilder {
            platform: Platform::thor_bf2(),
            clients: 1,
            servers: 1,
            client_triple: None,
            server_triple: None,
            opt_level: OptLevel::O2,
            fault_plan: None,
            rel_config: None,
            tuning: thread_transport::ThreadTuning::default(),
            socket: socket::SocketConfig::default(),
        }
    }

    /// Number of driver-side client runtimes (at least 1).  Clients occupy
    /// ranks `0..n`, servers ranks `n..n+servers`; each client injects an
    /// independent operation stream with its own completion routing.
    pub fn clients(mut self, clients: usize) -> Self {
        self.clients = clients.max(1);
        self
    }

    /// Select the testbed platform (fabric and CPU calibration, default
    /// triples).
    pub fn platform(mut self, platform: Platform) -> Self {
        self.platform = platform;
        self
    }

    /// Number of server nodes (ranks 1..=n).
    pub fn servers(mut self, servers: usize) -> Self {
        self.servers = servers;
        self
    }

    /// Override the client's target triple (defaults to the platform's).
    pub fn client_triple(mut self, triple: TargetTriple) -> Self {
        self.client_triple = Some(triple);
        self
    }

    /// Override the servers' target triple (defaults to the platform's).
    pub fn server_triple(mut self, triple: TargetTriple) -> Self {
        self.server_triple = Some(triple);
        self
    }

    /// JIT optimisation level used on every node.
    pub fn opt_level(mut self, opt_level: OptLevel) -> Self {
        self.opt_level = opt_level;
        self
    }

    /// Install a seeded [`tc_chaos::FaultPlan`]: every fabric traversal
    /// consults the chaos engine (drop / duplicate / delay / reorder,
    /// scheduled partitions, crash windows) and the data plane runs over
    /// the reliable-delivery layer, making PUT/GET/ifunc injection
    /// exactly-once despite the injected faults.  Without a plan the
    /// transports keep their original zero-overhead lossless path.
    pub fn fault_plan(mut self, plan: tc_chaos::FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Override the reliable layer's retransmission tunables (initial RTO,
    /// backoff cap, adaptive estimation on/off) on every backend.  The
    /// defaults are [`RelConfig::sim_default`] on the simulated backend and
    /// [`RelConfig::threads_default`] on the wall-clock ones, all with
    /// adaptive estimation enabled; `RelConfig::threads_default().fixed()`
    /// recovers the pre-adaptive behaviour.  Only meaningful together with
    /// [`ClusterBuilder::fault_plan`].
    pub fn rel_config(mut self, config: RelConfig) -> Self {
        self.rel_config = Some(config);
        self
    }

    /// Enable self-healing on the socket backend: dead server ranks are
    /// detected (socket failure or PING silence), respawned (or awaited, in
    /// external mode) with bounded exponential backoff, re-handshaken,
    /// brought back to control-plane parity (AM catalog, recorded memory
    /// writes), and their reliable links replayed.  Requires a fault plan —
    /// only the reliable plane can replay in-flight frames.  Ignored by the
    /// other backends.
    pub fn socket_recovery(mut self) -> Self {
        self.socket.recover = true;
        self
    }

    /// Tune the threaded backend's scheduling constants (park timeout,
    /// batch caps, idle grace, control timeout) — formerly hard-coded.
    /// Ignored by the simulated backend.
    pub fn thread_tuning(mut self, tuning: thread_transport::ThreadTuning) -> Self {
        self.tuning = tuning;
        self
    }

    /// Set the endpoint the socket backend's driver listens on (default: a
    /// fresh Unix-domain socket under the system temp directory).  Ignored
    /// by the other backends.
    pub fn socket_addr(mut self, spec: SocketSpec) -> Self {
        self.socket.addr = Some(spec);
        self
    }

    /// Point the socket backend at the server binary it should spawn (a
    /// `tc-socket-server`-style executable).  Without this, the backend
    /// honours `TC_SOCKET_SERVER_BIN` and then looks for `tc-socket-server`
    /// next to the current executable.
    pub fn server_bin(mut self, bin: impl Into<std::path::PathBuf>) -> Self {
        self.socket.server_bin = Some(bin.into());
        self
    }

    /// Don't spawn server processes: wait for externally launched servers
    /// (e.g. `tc-socket-server --connect ...` on another terminal or host)
    /// to dial in instead.
    pub fn socket_external(mut self) -> Self {
        self.socket.spawn_servers = false;
        self
    }

    /// Tune the socket backend's scheduling constants.  Ignored by the
    /// other backends.
    pub fn socket_tuning(mut self, tuning: socket::SocketTuning) -> Self {
        self.socket.tuning = tuning;
        self
    }

    fn resolved_triples(&self) -> (TargetTriple, TargetTriple) {
        let client = self.client_triple.unwrap_or_else(|| {
            TargetTriple::parse(self.platform.client_triple).unwrap_or(TargetTriple::X86_64_GENERIC)
        });
        let server = self.server_triple.unwrap_or_else(|| {
            TargetTriple::parse(self.platform.server_triple)
                .unwrap_or(TargetTriple::AARCH64_GENERIC)
        });
        (client, server)
    }

    /// Build on the discrete-event backend.
    pub fn build_sim(self) -> Cluster<SimTransport> {
        let transport = SimTransport::with_config(
            self.platform,
            self.clients,
            self.servers,
            self.client_triple,
            self.server_triple,
            self.opt_level,
            self.fault_plan,
            self.rel_config,
        );
        Cluster::new(transport)
    }

    /// Build on the real-thread backend.
    pub fn build_threaded(self) -> Cluster<ThreadTransport> {
        let (client, server) = self.resolved_triples();
        Cluster::new(ThreadTransport::with_config(
            self.clients,
            self.servers,
            client,
            server,
            self.opt_level,
            self.tuning,
            self.fault_plan,
            self.rel_config,
        ))
    }

    /// Build on the cross-process socket backend: spawns (or awaits) one OS
    /// process per server rank and handshakes with each.  Unlike the other
    /// backends, startup is fallible — the server binary may be missing or
    /// a server process may fail to dial in.
    pub fn build_socket(self) -> Result<Cluster<SocketTransport>> {
        let (client, server) = self.resolved_triples();
        let mut socket = self.socket;
        socket.rel_config = self.rel_config.or(socket.rel_config);
        Ok(Cluster::new(SocketTransport::connect_config(
            self.clients,
            self.servers,
            client,
            server,
            self.opt_level,
            self.fault_plan,
            socket,
        )?))
    }

    /// Build on a runtime-chosen backend behind a trait object — lets one
    /// scenario function iterate over backends.
    pub fn build(self, backend: Backend) -> Cluster<Box<dyn Transport>> {
        match backend {
            Backend::Simnet => {
                Cluster::new(Box::new(self.build_sim().into_transport()) as Box<dyn Transport>)
            }
            Backend::Threads => {
                Cluster::new(Box::new(self.build_threaded().into_transport()) as Box<dyn Transport>)
            }
            Backend::Socket => Cluster::new(Box::new(
                self.build_socket()
                    .expect("socket backend failed to start")
                    .into_transport(),
            ) as Box<dyn Transport>),
        }
    }
}
