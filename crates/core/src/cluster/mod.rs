//! The unified cluster API: one builder, pluggable transports.
//!
//! The paper's claim is that ifuncs move transparently between heterogeneous
//! processing elements.  This module makes the *driving* side equally
//! transparent: a [`Cluster`] owns a client runtime and a set of server
//! runtimes behind a [`Transport`], and the same scenario code runs unchanged
//! on either first-class backend:
//!
//! * [`SimTransport`] — the calibrated discrete-event engine (virtual time,
//!   [`crate::sim::TimingLog`] records, the machinery behind every table and
//!   figure reproduction);
//! * [`ThreadTransport`] — real OS threads and channels (wall-clock time,
//!   genuine concurrency; no timing model).
//!
//! ```
//! use tc_core::cluster::ClusterBuilder;
//! use tc_core::{build_ifunc_library, ToolchainOptions};
//! use tc_bitir::{ModuleBuilder, ScalarType, BinOp};
//!
//! // An ifunc: add the payload's first byte to the target counter.
//! let mut mb = ModuleBuilder::new("quick_tsi");
//! {
//!     let mut f = mb.entry_function();
//!     let payload = f.param(0);
//!     let target = f.param(2);
//!     let delta = f.load(ScalarType::U8, payload, 0);
//!     let counter = f.load(ScalarType::U64, target, 0);
//!     let sum = f.bin(BinOp::Add, ScalarType::U64, counter, delta);
//!     f.store(ScalarType::U64, sum, target, 0);
//!     let zero = f.const_i64(0);
//!     f.ret(zero);
//!     f.finish();
//! }
//! let library = build_ifunc_library(&mb.build(), &ToolchainOptions::default()).unwrap();
//!
//! // The same lines drive the simulated or the threaded backend.
//! let mut cluster = ClusterBuilder::new()
//!     .platform(tc_simnet::Platform::thor_bf2())
//!     .servers(2)
//!     .build_sim();
//! let handle = cluster.register_ifunc(library);
//! let msg = cluster.bitcode_message(handle, vec![5]).unwrap();
//! cluster.send_ifunc(&msg, 1).unwrap();
//! cluster.run_until_idle(1_000).unwrap();
//! assert_eq!(cluster.read_u64(1, tc_core::layout::TARGET_REGION_BASE).unwrap(), 5);
//! assert_eq!(cluster.stats(1).unwrap().ifuncs_executed, 1);
//! ```

pub mod completion;
pub mod reliable;
pub mod sim_transport;
pub mod thread_transport;
pub mod wire;

pub use completion::{ClaimTable, CompletionSet, CompletionToken, PutHandle, Ready};
pub use reliable::{RelConfig, RelMetrics};
pub use sim_transport::SimTransport;
pub use tc_chaos::{ChaosSession, ChaosStats, FaultPlan, LinkFaults};
pub use thread_transport::{ThreadTransport, ThreadTuning};

use crate::error::{CoreError, Result};
use crate::ifunc::{IfuncHandle, IfuncLibrary, IfuncMessage};
use crate::layout::result_slot_addr;
use crate::metrics::RuntimeStats;
use crate::runtime::{Completion, NativeAmHandler, NodeRuntime};
use tc_bitir::TargetTriple;
use tc_jit::OptLevel;
use tc_simnet::Platform;
use tc_ucx::{Bytes, RequestId, WorkerAddr};

/// Which first-class backend a [`ClusterBuilder`] should instantiate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Backend {
    /// The calibrated discrete-event simulation ([`SimTransport`]).
    Simnet,
    /// Real OS threads and channels ([`ThreadTransport`]).
    Threads,
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Backend::Simnet => "simnet",
            Backend::Threads => "threads",
        })
    }
}

/// Counters every transport keeps about the fabric itself (as opposed to the
/// per-node [`RuntimeStats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransportMetrics {
    /// Messages delivered to a destination node.
    pub messages_delivered: u64,
    /// Messages dropped by the fabric (misaddressed rank, stopped node).
    /// Never silently zero: both backends count their drops.
    pub messages_dropped: u64,
    /// Bytes the *client* posted to the fabric.  (Server-side traffic is
    /// backend-shaped — in-process queues vs. channels — so per-node
    /// [`RuntimeStats::bytes_sent`] via [`Transport::node_stats`] is the
    /// comparable per-node measure.)
    pub bytes_sent: u64,
    /// Messages re-sent by the reliable-delivery layer (0 without a fault
    /// plan).
    pub retransmits: u64,
    /// Duplicate arrivals dropped by receiver-side dedup (0 without a
    /// fault plan).
    pub dup_drops: u64,
    /// Faults the chaos engine injected — drops, duplicates, delays,
    /// reorders, partition and crash drops (0 without a fault plan).
    pub faults_injected: u64,
}

/// A pluggable cluster backend: hosts the node runtimes and moves fabric
/// operations between them.
///
/// Implementations provide *mechanism* (where runtimes live, how operations
/// travel, what "time" means); [`Cluster`] provides the uniform *policy* API
/// (sends, typed completion waits, snapshots) on top.
pub trait Transport {
    /// Short backend name for diagnostics ("simnet", "threads").
    fn backend_name(&self) -> &'static str;

    /// Number of nodes including the client (rank 0).
    fn node_count(&self) -> usize;

    /// The client runtime (always driver-side and directly accessible).
    fn client(&self) -> &NodeRuntime;

    /// Mutable client runtime.
    fn client_mut(&mut self) -> &mut NodeRuntime;

    /// Predeploy a native Active-Message handler on every node, assigning
    /// consistent handler ids cluster-wide.
    fn deploy_am(&mut self, name: &str, handler: NativeAmHandler) -> Result<()>;

    /// Pick up operations the client has posted and move them into the
    /// fabric.
    fn flush_client(&mut self) -> Result<()>;

    /// Advance the transport by one unit of progress (one simulated event,
    /// or one received envelope).  Returns `false` when nothing happened —
    /// the queue was empty or the poll timed out.
    fn step(&mut self) -> Result<bool>;

    /// How many consecutive idle [`Transport::step`]s mean "quiescent".  The
    /// simulator's queue emptiness is definitive (1); the threaded backend
    /// needs a grace period because work may be mid-flight on another thread.
    fn idle_grace(&self) -> u32 {
        1
    }

    /// Drain completions (GET results, X-RDMA results, confirmed-PUT acks)
    /// that reached the client.
    fn take_completions(&mut self) -> Vec<Completion>;

    /// The transport's clock in nanoseconds: virtual time for the simulated
    /// backend, wall-clock time for the threaded one.  Per-handle deadlines
    /// in a [`CompletionSet`] are measured on this clock.  Transports
    /// without a meaningful clock may return 0 (deadlines then never expire
    /// by time, only by quiescence).
    fn now_nanos(&self) -> u64 {
        0
    }

    /// Messages the reliable-delivery layer still holds unacknowledged,
    /// summed across all nodes (0 without a fault plan).  The cluster's wait
    /// loops consult this so a quiet-but-retransmitting fabric is never
    /// mistaken for a quiescent one.
    fn unacked_total(&self) -> u64 {
        0
    }

    /// Earliest armed retransmission deadline across all nodes, on the
    /// [`Transport::now_nanos`] clock (`None` when nothing is outstanding).
    /// Implement together with [`Transport::unacked_total`]: the wait loops
    /// treat unacked frames as busy only while a deadline is armed.
    fn next_rel_deadline(&self) -> Option<u64> {
        None
    }

    /// Read `len` bytes at `addr` from node `rank`'s memory.
    fn read_memory(&mut self, rank: usize, addr: u64, len: usize) -> Result<Vec<u8>>;

    /// Write into node `rank`'s memory (scenario setup: seeding counters,
    /// installing data shards).
    fn write_memory(&mut self, rank: usize, addr: u64, data: &[u8]) -> Result<()>;

    /// Snapshot node `rank`'s runtime counters.
    fn node_stats(&mut self, rank: usize) -> Result<RuntimeStats>;

    /// Fabric-level counters (deliveries, drops, bytes).
    fn metrics(&self) -> TransportMetrics;

    /// Reliability counters of one node — retransmits, dup drops,
    /// out-of-order parks (`None` without a fault plan).
    fn node_reliability(&self, _rank: usize) -> Option<RelMetrics> {
        None
    }

    /// Injected-fault counters of the chaos engine (`None` without a fault
    /// plan).
    fn chaos_stats(&self) -> Option<tc_chaos::ChaosStats> {
        None
    }

    /// Tear the backend down (join threads).  Idempotent; the default is a
    /// no-op for in-process backends.
    fn shutdown(&mut self) {}
}

impl Transport for Box<dyn Transport> {
    fn backend_name(&self) -> &'static str {
        (**self).backend_name()
    }
    fn node_count(&self) -> usize {
        (**self).node_count()
    }
    fn client(&self) -> &NodeRuntime {
        (**self).client()
    }
    fn client_mut(&mut self) -> &mut NodeRuntime {
        (**self).client_mut()
    }
    fn deploy_am(&mut self, name: &str, handler: NativeAmHandler) -> Result<()> {
        (**self).deploy_am(name, handler)
    }
    fn flush_client(&mut self) -> Result<()> {
        (**self).flush_client()
    }
    fn step(&mut self) -> Result<bool> {
        (**self).step()
    }
    fn idle_grace(&self) -> u32 {
        (**self).idle_grace()
    }
    fn take_completions(&mut self) -> Vec<Completion> {
        (**self).take_completions()
    }
    fn now_nanos(&self) -> u64 {
        (**self).now_nanos()
    }
    fn unacked_total(&self) -> u64 {
        (**self).unacked_total()
    }
    fn next_rel_deadline(&self) -> Option<u64> {
        (**self).next_rel_deadline()
    }
    fn read_memory(&mut self, rank: usize, addr: u64, len: usize) -> Result<Vec<u8>> {
        (**self).read_memory(rank, addr, len)
    }
    fn write_memory(&mut self, rank: usize, addr: u64, data: &[u8]) -> Result<()> {
        (**self).write_memory(rank, addr, data)
    }
    fn node_stats(&mut self, rank: usize) -> Result<RuntimeStats> {
        (**self).node_stats(rank)
    }
    fn metrics(&self) -> TransportMetrics {
        (**self).metrics()
    }
    fn node_reliability(&self, rank: usize) -> Option<RelMetrics> {
        (**self).node_reliability(rank)
    }
    fn chaos_stats(&self) -> Option<tc_chaos::ChaosStats> {
        (**self).chaos_stats()
    }
    fn shutdown(&mut self) {
        (**self).shutdown()
    }
}

/// A handle that can be waited on through [`Cluster::wait`], claiming a typed
/// value from the indexed [`ClaimTable`] of client completions.
pub trait CompletionHandle {
    /// What the completed operation yields.
    type Output;

    /// Remove and return this handle's completion from the claim table, if
    /// present.
    fn try_claim(&self, claims: &mut ClaimTable) -> Option<Self::Output>;

    /// Arrival order of this handle's completion, if it is pending — used
    /// by [`CompletionSet`] for first-arrived fairness.
    fn ready_at(&self, claims: &ClaimTable) -> Option<u64>;

    /// Human-readable description for timeout errors.
    fn describe(&self) -> String;
}

/// Typed handle for a posted one-sided GET; waiting yields the fetched bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GetHandle {
    request: RequestId,
}

impl GetHandle {
    /// The underlying request id.
    pub fn request(&self) -> RequestId {
        self.request
    }
}

impl CompletionHandle for GetHandle {
    type Output = Bytes;

    fn try_claim(&self, claims: &mut ClaimTable) -> Option<Bytes> {
        claims.claim_get(self.request)
    }

    fn ready_at(&self, claims: &ClaimTable) -> Option<u64> {
        claims.get_arrival(self.request)
    }

    fn describe(&self) -> String {
        format!("GET completion (request {})", self.request.0)
    }
}

/// Typed handle for an X-RDMA result mailbox slot; waiting yields the result
/// value an ifunc returned with `tc_return_result`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResultHandle {
    slot: u64,
}

impl ResultHandle {
    /// A handle for an explicitly chosen mailbox slot.
    ///
    /// **Contract:** slots named this way share the one mailbox with slots
    /// handed out by [`Cluster::result_slot`].  To keep the allocator from
    /// colliding with a manually chosen slot, reserve it first with
    /// [`Cluster::reserve_result_slot`] (which also returns the handle) —
    /// the allocator then skips it.  Unreserved manual slots are only safe
    /// if the driver never calls `result_slot()`.
    pub fn for_slot(slot: u64) -> Self {
        ResultHandle { slot }
    }

    /// The mailbox slot this handle waits on (encode it into the ifunc
    /// payload so the remote side knows where to deliver).
    pub fn slot(&self) -> u64 {
        self.slot
    }

    /// Address of the slot in the client's result mailbox.
    pub fn mailbox_addr(&self) -> u64 {
        result_slot_addr(self.slot)
    }
}

impl CompletionHandle for ResultHandle {
    type Output = u64;

    fn try_claim(&self, claims: &mut ClaimTable) -> Option<u64> {
        claims.claim_result(self.slot)
    }

    fn ready_at(&self, claims: &ClaimTable) -> Option<u64> {
        claims.result_arrival(self.slot)
    }

    fn describe(&self) -> String {
        format!("X-RDMA result (mailbox slot {})", self.slot)
    }
}

/// A heterogeneous cluster driven through a pluggable [`Transport`].
///
/// Rank 0 is the client; ranks `1..=server_count()` are servers.  All sends
/// originate at the client (servers communicate through ifunc follow-on
/// actions), completions surface as typed handles, and node state is read
/// back through the transport so the same scenario runs on any backend.
pub struct Cluster<T: Transport> {
    transport: T,
    claims: ClaimTable,
    next_result_slot: u64,
    reserved_slots: std::collections::HashSet<u64>,
}

impl<T: Transport> std::fmt::Debug for Cluster<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("backend", &self.transport.backend_name())
            .field("nodes", &self.transport.node_count())
            .field("pending_completions", &self.claims.len())
            .finish()
    }
}

/// How many consecutive idle transport steps the wait loops tolerate while
/// the reliable-delivery layer still reports unacked frames, before giving
/// up anyway.  Both built-in transports keep reporting progress while their
/// retransmission timers are armed, so this only bounds a transport that is
/// wedged (or a third-party transport with incomplete accounting).
const REL_STALL_LIMIT: u32 = 64;

/// Shared quiescence tracker of the wait loops: `grace` idle steps in a row
/// mean quiescent — but an idle step observed while the reliability layer
/// holds unacked frames does not count (bounded by [`REL_STALL_LIMIT`]).
struct Idleness {
    grace: u32,
    idle: u32,
    rel_stall: u32,
}

impl Idleness {
    fn new(grace: u32) -> Self {
        Idleness {
            grace,
            idle: 0,
            rel_stall: 0,
        }
    }

    /// Record one driven step.  Returns true when the transport should be
    /// considered quiescent (give up waiting).
    fn note<T: Transport>(&mut self, transport: &T, progressed: bool) -> bool {
        if progressed {
            self.idle = 0;
            self.rel_stall = 0;
            return false;
        }
        // A retransmitting link is busy, not idle — but only while a
        // retransmission deadline is actually armed: unacked frames with no
        // armed timer (`next_rel_deadline() == None`) can never be
        // re-driven, so waiting on them would just delay the timeout.
        if transport.unacked_total() > 0
            && transport.next_rel_deadline().is_some()
            && self.rel_stall < REL_STALL_LIMIT
        {
            self.rel_stall += 1;
            self.idle = 0;
            return false;
        }
        self.idle += 1;
        self.idle >= self.grace
    }
}

impl<T: Transport> Cluster<T> {
    /// Wrap an already-constructed transport.  Prefer [`ClusterBuilder`].
    pub fn new(transport: T) -> Self {
        Cluster {
            transport,
            claims: ClaimTable::default(),
            next_result_slot: 0,
            reserved_slots: std::collections::HashSet::new(),
        }
    }

    /// The underlying transport (backend-specific inspection: timing logs,
    /// virtual time, thread metrics).
    pub fn transport(&self) -> &T {
        &self.transport
    }

    /// Mutable access to the underlying transport.
    pub fn transport_mut(&mut self) -> &mut T {
        &mut self.transport
    }

    /// Short backend name ("simnet", "threads").
    pub fn backend_name(&self) -> &'static str {
        self.transport.backend_name()
    }

    /// Number of nodes including the client.
    pub fn node_count(&self) -> usize {
        self.transport.node_count()
    }

    /// Number of server nodes.
    pub fn server_count(&self) -> usize {
        self.transport.node_count() - 1
    }

    /// The client runtime.
    pub fn client(&self) -> &NodeRuntime {
        self.transport.client()
    }

    /// Mutable client runtime (escape hatch for source-side operations the
    /// high-level API does not cover).
    pub fn client_mut(&mut self) -> &mut NodeRuntime {
        self.transport.client_mut()
    }

    // --- scenario setup -----------------------------------------------------

    /// Register an ifunc library on the client, returning its handle.
    pub fn register_ifunc(&mut self, library: IfuncLibrary) -> IfuncHandle {
        self.transport.client_mut().register_library(library)
    }

    /// Create a bitcode-representation message for a registered library.
    pub fn bitcode_message(&self, handle: IfuncHandle, payload: Vec<u8>) -> Result<IfuncMessage> {
        self.transport
            .client()
            .create_bitcode_message(handle, payload)
    }

    /// Create a binary-representation message targeted at a triple.
    pub fn binary_message(
        &self,
        handle: IfuncHandle,
        target_triple: &str,
        payload: Vec<u8>,
    ) -> Result<IfuncMessage> {
        self.transport
            .client()
            .create_binary_message(handle, target_triple, payload)
    }

    /// Predeploy a native Active-Message handler on every node (the AM
    /// baseline requires code presence everywhere).
    pub fn deploy_am(&mut self, name: &str, handler: NativeAmHandler) -> Result<()> {
        self.transport.deploy_am(name, handler)
    }

    /// Write a u64 into a node's memory (seed counters, install tables).
    pub fn write_u64(&mut self, rank: usize, addr: u64, value: u64) -> Result<()> {
        self.transport
            .write_memory(rank, addr, &value.to_le_bytes())
    }

    /// Write bytes into a node's memory.
    pub fn write_memory(&mut self, rank: usize, addr: u64, data: &[u8]) -> Result<()> {
        self.transport.write_memory(rank, addr, data)
    }

    // --- sends --------------------------------------------------------------

    /// Send an ifunc message to server `dst`, applying the sender-side code
    /// cache.  Returns the bytes that actually travelled.
    pub fn send_ifunc(&mut self, message: &IfuncMessage, dst: usize) -> Result<usize> {
        let bytes = self
            .transport
            .client_mut()
            .send_ifunc(message, WorkerAddr(dst as u32));
        self.transport.flush_client()?;
        Ok(bytes)
    }

    /// Send an Active Message to a predeployed handler on `dst`.
    pub fn send_am(
        &mut self,
        handler: &str,
        dst: usize,
        payload: impl Into<Bytes>,
    ) -> Result<usize> {
        let size = self
            .transport
            .client_mut()
            .send_am(handler, WorkerAddr(dst as u32), payload)?;
        self.transport.flush_client()?;
        Ok(size)
    }

    /// Post a one-sided PUT into `dst`'s memory.  PUTs have no completion
    /// event in this model; the returned id identifies the posted request.
    /// Passing a [`Bytes`] view makes the post zero-copy end to end.
    pub fn put(&mut self, dst: usize, addr: u64, data: impl Into<Bytes>) -> Result<RequestId> {
        let request = self
            .transport
            .client_mut()
            .post_put(WorkerAddr(dst as u32), addr, data);
        self.transport.flush_client()?;
        Ok(request)
    }

    /// Post a *confirmed* one-sided PUT into `dst`'s memory: the destination
    /// applies the write and acknowledges it through the transport.  Wait on
    /// the returned [`PutHandle`] (or register it in a [`CompletionSet`])
    /// for transport-confirmed delivery.
    pub fn put_confirmed(
        &mut self,
        dst: usize,
        addr: u64,
        data: impl Into<Bytes>,
    ) -> Result<PutHandle> {
        let request =
            self.transport
                .client_mut()
                .post_put_confirmed(WorkerAddr(dst as u32), addr, data);
        self.transport.flush_client()?;
        Ok(PutHandle { request })
    }

    /// Post a one-sided GET against `dst`, returning a typed handle to wait
    /// on with [`Cluster::wait`].
    pub fn get(&mut self, dst: usize, addr: u64, len: u64) -> Result<GetHandle> {
        let handle = self.post_get(dst, addr, len);
        self.transport.flush_client()?;
        Ok(handle)
    }

    /// Post a one-sided GET *without* flushing it into the fabric.  A
    /// pipelined driver filling a deep window posts the whole burst, then
    /// calls [`Cluster::flush`] once — paying the fabric hand-off per batch
    /// instead of per operation.
    pub fn post_get(&mut self, dst: usize, addr: u64, len: u64) -> GetHandle {
        let request = self
            .transport
            .client_mut()
            .post_get(WorkerAddr(dst as u32), addr, len);
        GetHandle { request }
    }

    /// Post a confirmed PUT *without* flushing (see [`Cluster::post_get`]).
    pub fn post_put_confirmed(
        &mut self,
        dst: usize,
        addr: u64,
        data: impl Into<Bytes>,
    ) -> PutHandle {
        let request =
            self.transport
                .client_mut()
                .post_put_confirmed(WorkerAddr(dst as u32), addr, data);
        PutHandle { request }
    }

    /// Move everything posted-but-unflushed into the fabric (the batch
    /// counterpart of the auto-flush in [`Cluster::get`] / [`Cluster::put`]).
    pub fn flush(&mut self) -> Result<()> {
        self.transport.flush_client()
    }

    /// Allocate a fresh X-RDMA result-mailbox slot.  Encode
    /// [`ResultHandle::slot`] into the ifunc payload, send, then
    /// [`Cluster::wait`] on the handle.  Slots reserved through
    /// [`Cluster::reserve_result_slot`] are skipped, so manually constructed
    /// handles never collide with allocated ones.
    pub fn result_slot(&mut self) -> ResultHandle {
        while self.reserved_slots.contains(&self.next_result_slot) {
            self.next_result_slot += 1;
        }
        let slot = self.next_result_slot;
        self.next_result_slot += 1;
        ResultHandle { slot }
    }

    /// Reserve an explicitly chosen mailbox slot, returning its handle.  The
    /// [`Cluster::result_slot`] allocator will never hand out a reserved
    /// slot, which is the safe way to mix manual
    /// ([`ResultHandle::for_slot`]) and allocated slots in one driver.
    pub fn reserve_result_slot(&mut self, slot: u64) -> ResultHandle {
        self.reserved_slots.insert(slot);
        ResultHandle { slot }
    }

    // --- completion and progress --------------------------------------------

    fn absorb_completions(&mut self) {
        self.claims.absorb(self.transport.take_completions());
    }

    /// Drive the transport until `handle`'s completion arrives, returning its
    /// typed value.  Gives up with [`CoreError::WaitTimeout`] once the
    /// transport stays quiescent for its grace period — where quiescence
    /// also requires the reliable-delivery layer to hold no unacked frames
    /// ([`Transport::unacked_total`]), so a silent-but-retransmitting link
    /// under a fault plan is never mistaken for idle.
    pub fn wait<H: CompletionHandle>(&mut self, handle: &H) -> Result<H::Output> {
        let mut idleness = Idleness::new(self.transport.idle_grace());
        loop {
            self.absorb_completions();
            if let Some(out) = handle.try_claim(&mut self.claims) {
                return Ok(out);
            }
            let progressed = self.transport.step()?;
            if idleness.note(&self.transport, progressed) {
                return Err(CoreError::WaitTimeout {
                    what: handle.describe(),
                });
            }
        }
    }

    /// Check for `handle`'s completion without driving the transport.
    pub fn try_claim<H: CompletionHandle>(&mut self, handle: &H) -> Option<H::Output> {
        self.absorb_completions();
        handle.try_claim(&mut self.claims)
    }

    /// Drive the transport until any handle registered in `set` resolves:
    /// first ready wins (ties broken by completion arrival order), expired
    /// per-handle deadlines surface as [`Ready::Deadline`].  The resolved
    /// registration is removed from the set.
    ///
    /// When the transport goes quiescent with registrations outstanding, a
    /// deadline-armed registration (earliest first) resolves as
    /// [`Ready::Deadline`] — nothing can beat the deadline anymore — and
    /// only a set with no armed deadlines fails with
    /// [`CoreError::WaitTimeout`].
    pub fn wait_any(&mut self, set: &mut CompletionSet) -> Result<(CompletionToken, Ready)> {
        if set.is_empty() {
            return Err(CoreError::WaitTimeout {
                what: "wait_any on an empty completion set".into(),
            });
        }
        let mut idleness = Idleness::new(self.transport.idle_grace());
        loop {
            self.absorb_completions();
            if let Some(ready) = set.claim_earliest(&mut self.claims) {
                return Ok(ready);
            }
            if set.has_deadlines() {
                let now = self.transport.now_nanos();
                set.resolve_deadlines(now);
                if let Some(token) = set.take_expired(now) {
                    return Ok((token, Ready::Deadline));
                }
            }
            let progressed = self.transport.step()?;
            if idleness.note(&self.transport, progressed) {
                if let Some(token) = set.take_any_deadlined() {
                    return Ok((token, Ready::Deadline));
                }
                return Err(CoreError::WaitTimeout {
                    what: set.describe(),
                });
            }
        }
    }

    /// Drive the transport until every registration in `set` has resolved,
    /// returning `(token, outcome)` pairs in resolution order.
    pub fn wait_all(&mut self, set: &mut CompletionSet) -> Result<Vec<(CompletionToken, Ready)>> {
        let mut out = Vec::with_capacity(set.len());
        while !set.is_empty() {
            out.push(self.wait_any(set)?);
        }
        Ok(out)
    }

    /// Non-blocking check of `set`: absorbs pending completions and resolves
    /// at most one registration (ready completion first, then expired
    /// deadline) without driving the transport.
    pub fn poll_any(&mut self, set: &mut CompletionSet) -> Option<(CompletionToken, Ready)> {
        self.absorb_completions();
        if let Some(ready) = set.claim_earliest(&mut self.claims) {
            return Some(ready);
        }
        if !set.has_deadlines() {
            return None;
        }
        let now = self.transport.now_nanos();
        set.resolve_deadlines(now);
        set.take_expired(now).map(|t| (t, Ready::Deadline))
    }

    /// Number of arrived-but-unclaimed completions buffered client-side.
    pub fn pending_completions(&self) -> usize {
        self.claims.len()
    }

    /// Drive the transport until it goes quiescent or `max_steps` progress
    /// steps have been made.  Returns the number of steps taken.
    pub fn run_until_idle(&mut self, max_steps: u64) -> Result<u64> {
        let mut idleness = Idleness::new(self.transport.idle_grace());
        let mut steps = 0u64;
        while steps < max_steps {
            let progressed = self.transport.step()?;
            if progressed {
                steps += 1;
            }
            if idleness.note(&self.transport, progressed) {
                break;
            }
        }
        Ok(steps)
    }

    /// Drive the transport until at least `count` *new* completions are
    /// pending (or quiescence / `max_steps`), then return them in arrival
    /// order.
    ///
    /// Returned completions are **not** consumed: they stay claimable, so a
    /// later [`Cluster::wait`] on a handle whose completion was already
    /// returned here still succeeds instead of timing out.  Repeated calls
    /// return only completions that arrived since the previous call.
    pub fn run_until_completions(
        &mut self,
        count: usize,
        max_steps: u64,
    ) -> Result<Vec<Completion>> {
        let mut idleness = Idleness::new(self.transport.idle_grace());
        let mut steps = 0u64;
        loop {
            self.absorb_completions();
            if self.claims.fresh_len() >= count || steps >= max_steps {
                break;
            }
            let progressed = self.transport.step()?;
            if progressed {
                steps += 1;
            }
            if idleness.note(&self.transport, progressed) {
                break;
            }
        }
        Ok(self.claims.take_fresh())
    }

    // --- observation --------------------------------------------------------

    /// Read a u64 from a node's memory through the transport.  A transport
    /// that yields fewer than 8 bytes produces a typed
    /// [`CoreError::ShortRead`] instead of a panic.
    pub fn read_u64(&mut self, rank: usize, addr: u64) -> Result<u64> {
        let bytes = self.transport.read_memory(rank, addr, 8)?;
        let bytes8: [u8; 8] =
            bytes
                .get(..8)
                .and_then(|s| s.try_into().ok())
                .ok_or(CoreError::ShortRead {
                    rank,
                    addr,
                    wanted: 8,
                    got: bytes.len(),
                })?;
        Ok(u64::from_le_bytes(bytes8))
    }

    /// Read bytes from a node's memory through the transport.
    pub fn read_memory(&mut self, rank: usize, addr: u64, len: usize) -> Result<Vec<u8>> {
        self.transport.read_memory(rank, addr, len)
    }

    /// Snapshot a node's runtime counters through the transport.
    pub fn stats(&mut self, rank: usize) -> Result<RuntimeStats> {
        self.transport.node_stats(rank)
    }

    /// Fabric-level metrics (deliveries, drops, bytes).
    pub fn metrics(&self) -> TransportMetrics {
        self.transport.metrics()
    }

    /// Tear the cluster down, returning the transport for post-mortem
    /// inspection.
    pub fn shutdown(mut self) -> T {
        self.transport.shutdown();
        self.transport
    }

    /// Unwrap into the transport *without* shutting it down (re-wrapping,
    /// boxing).  Any buffered completions are dropped.
    pub fn into_transport(self) -> T {
        self.transport
    }
}

/// Builder for a [`Cluster`]: platform, node count, target triples, JIT
/// optimisation level, backend.
///
/// The platform always provides the fabric/CPU calibration for the simulated
/// backend and the default target triples for both backends.
#[derive(Debug, Clone)]
pub struct ClusterBuilder {
    platform: Platform,
    servers: usize,
    client_triple: Option<TargetTriple>,
    server_triple: Option<TargetTriple>,
    opt_level: OptLevel,
    fault_plan: Option<tc_chaos::FaultPlan>,
    tuning: thread_transport::ThreadTuning,
}

impl Default for ClusterBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl ClusterBuilder {
    /// A builder for the Thor Xeon+BF2 platform with one server.
    pub fn new() -> Self {
        ClusterBuilder {
            platform: Platform::thor_bf2(),
            servers: 1,
            client_triple: None,
            server_triple: None,
            opt_level: OptLevel::O2,
            fault_plan: None,
            tuning: thread_transport::ThreadTuning::default(),
        }
    }

    /// Select the testbed platform (fabric and CPU calibration, default
    /// triples).
    pub fn platform(mut self, platform: Platform) -> Self {
        self.platform = platform;
        self
    }

    /// Number of server nodes (ranks 1..=n).
    pub fn servers(mut self, servers: usize) -> Self {
        self.servers = servers;
        self
    }

    /// Override the client's target triple (defaults to the platform's).
    pub fn client_triple(mut self, triple: TargetTriple) -> Self {
        self.client_triple = Some(triple);
        self
    }

    /// Override the servers' target triple (defaults to the platform's).
    pub fn server_triple(mut self, triple: TargetTriple) -> Self {
        self.server_triple = Some(triple);
        self
    }

    /// JIT optimisation level used on every node.
    pub fn opt_level(mut self, opt_level: OptLevel) -> Self {
        self.opt_level = opt_level;
        self
    }

    /// Install a seeded [`tc_chaos::FaultPlan`]: every fabric traversal
    /// consults the chaos engine (drop / duplicate / delay / reorder,
    /// scheduled partitions, crash windows) and the data plane runs over
    /// the reliable-delivery layer, making PUT/GET/ifunc injection
    /// exactly-once despite the injected faults.  Without a plan the
    /// transports keep their original zero-overhead lossless path.
    pub fn fault_plan(mut self, plan: tc_chaos::FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Tune the threaded backend's scheduling constants (park timeout,
    /// batch caps, idle grace, control timeout) — formerly hard-coded.
    /// Ignored by the simulated backend.
    pub fn thread_tuning(mut self, tuning: thread_transport::ThreadTuning) -> Self {
        self.tuning = tuning;
        self
    }

    fn resolved_triples(&self) -> (TargetTriple, TargetTriple) {
        let client = self.client_triple.unwrap_or_else(|| {
            TargetTriple::parse(self.platform.client_triple).unwrap_or(TargetTriple::X86_64_GENERIC)
        });
        let server = self.server_triple.unwrap_or_else(|| {
            TargetTriple::parse(self.platform.server_triple)
                .unwrap_or(TargetTriple::AARCH64_GENERIC)
        });
        (client, server)
    }

    /// Build on the discrete-event backend.
    pub fn build_sim(self) -> Cluster<SimTransport> {
        let transport = SimTransport::with_config(
            self.platform,
            self.servers,
            self.client_triple,
            self.server_triple,
            self.opt_level,
            self.fault_plan,
        );
        Cluster::new(transport)
    }

    /// Build on the real-thread backend.
    pub fn build_threaded(self) -> Cluster<ThreadTransport> {
        let (client, server) = self.resolved_triples();
        Cluster::new(ThreadTransport::with_config(
            self.servers,
            client,
            server,
            self.opt_level,
            self.tuning,
            self.fault_plan,
        ))
    }

    /// Build on a runtime-chosen backend behind a trait object — lets one
    /// scenario function iterate over backends.
    pub fn build(self, backend: Backend) -> Cluster<Box<dyn Transport>> {
        match backend {
            Backend::Simnet => {
                Cluster::new(Box::new(self.build_sim().into_transport()) as Box<dyn Transport>)
            }
            Backend::Threads => {
                Cluster::new(Box::new(self.build_threaded().into_transport()) as Box<dyn Transport>)
            }
        }
    }
}
