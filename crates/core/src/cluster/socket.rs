//! The cross-process backend: each server rank is a separate OS process,
//! reached over TCP or Unix-domain sockets.
//!
//! Topology is a star: the driver process hosts the client runtimes and a
//! listener; every server process dials in, introduces itself with a HELLO
//! frame, and receives the cluster configuration (rank layout, target
//! triple, optimisation level, reliability tunables) in the WELCOME reply.
//! Server-to-server traffic — recursive ifunc hops, X-RDMA result returns —
//! is relayed through the driver, preserving end-to-end reliability
//! semantics per (source, destination) link.
//!
//! Frames reuse the [`wire`] codec unchanged: a [`tc_net::Frame`]'s `data`
//! segment carries exactly the bytes a threaded envelope would, and the
//! detached `payload` segment is the scatter-gather half of
//! [`wire::encode_op_vectored`], written to the socket with vectored I/O so
//! a large PUT or ifunc library crosses the process boundary without a
//! send-side copy.
//!
//! With a [`FaultPlan`] installed, the driver applies the chaos engine's
//! per-link decisions exactly once per traversal (client egress, server
//! ingress, server-to-server relay) to reliable data frames and acks —
//! mirroring the threaded backend's envelope filter — and every endpoint
//! runs a [`ReliableSet`], so delivery stays exactly-once and in-order over
//! a lossy socket.

use super::reliable::{LinkHealth, RelConfig, RelMetrics, ReliableSet};
use super::{wire, ClientId, ClientRef, ClientRefMut, Transport, TransportMetrics};
use crate::error::{CoreError, Result};
use crate::metrics::RuntimeStats;
use crate::runtime::{Completion, NativeAmHandler, NodeRuntime};
use std::collections::{HashMap, VecDeque};
use std::path::PathBuf;
use std::time::{Duration, Instant};
use tc_bitir::TargetTriple;
use tc_chaos::{ChaosSession, ChaosStats, FaultPlan};
use tc_jit::{Memory, OptLevel};
use tc_net::{ChildGuard, Connection, Frame, Listener, NetError, SocketSpec};
use tc_ucx::Bytes;

/// True when `TC_SOCKET_TRACE` is set: both halves of the socket backend
/// print per-frame routing decisions to stderr.  For debugging distributed
/// runs; the check is a single atomic load after the first call.
pub(crate) fn trace_on() -> bool {
    static ON: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *ON.get_or_init(|| std::env::var_os("TC_SOCKET_TRACE").is_some())
}

macro_rules! strace {
    ($($arg:tt)*) => {
        if crate::cluster::socket::trace_on() {
            eprintln!($($arg)*);
        }
    };
}
pub(crate) use strace;

/// Session tag: server → driver introduction (`[magic][version][rank]`).
pub const TAG_HELLO: u64 = 100;
/// Session tag: driver → server configuration reply.
pub const TAG_WELCOME: u64 = 101;
/// Session tag: driver asks a server to deploy a catalogued AM handler
/// (control body: handler name bytes).
pub const TAG_AM_DEPLOY: u64 = 102;
/// Session tag: server answers a [`TAG_AM_DEPLOY`] (`[1]` deployed, `[0]`
/// unknown name).
pub const TAG_AM_ACK: u64 = 103;
/// Session tag: driver tells a server to flush and exit.
pub const TAG_SHUTDOWN: u64 = 104;
/// Session tag: server announces a voluntary close (EOF after this is a
/// clean exit, not a peer failure).
pub const TAG_BYE: u64 = 105;
/// Session tag: server publishes its reliability state (unacked count,
/// deadline, counters) so the driver's quiescence detection sees the whole
/// cluster.
pub const TAG_REL_INFO: u64 = 106;
/// Session tag: driver-side liveness probe (body: 8-byte nonce).  A healthy
/// server echoes it back as [`TAG_PONG`]; silence past the ping timeout
/// declares the rank dead even when the socket stays open.
pub const TAG_PING: u64 = 107;
/// Session tag: server's echo of a [`TAG_PING`] nonce.
pub const TAG_PONG: u64 = 108;
/// Session tag: driver tells a server that peer rank `r` (body: 4-byte LE
/// rank) was respawned with a fresh sequence space — the server must reset
/// its reliable link to `r` and re-send its retained unacked frames
/// renumbered from seq 1.
pub const TAG_LINK_RESET: u64 = 109;

/// HELLO magic ("TCN1").
pub const HELLO_MAGIC: u32 = 0x5443_4E31;
/// Session protocol version.
pub const PROTO_VERSION: u32 = 1;
/// HELLO rank value meaning "assign me one".
pub const RANK_ANY: u32 = u32::MAX;
/// `from`/`to` value of the driver itself (it is not a rank).
pub const DRIVER_PORT: u32 = u32::MAX;

/// Encode a HELLO body.
pub fn encode_hello(rank: u32) -> Vec<u8> {
    let mut out = Vec::with_capacity(12);
    out.extend_from_slice(&HELLO_MAGIC.to_le_bytes());
    out.extend_from_slice(&PROTO_VERSION.to_le_bytes());
    out.extend_from_slice(&rank.to_le_bytes());
    out
}

/// Decode a HELLO body into the requested rank.
pub fn decode_hello(body: &[u8]) -> Result<u32> {
    if body.len() != 12 {
        return Err(CoreError::Transport(format!(
            "HELLO must be 12 bytes, got {}",
            body.len()
        )));
    }
    let magic = u32::from_le_bytes(body[0..4].try_into().unwrap());
    let version = u32::from_le_bytes(body[4..8].try_into().unwrap());
    if magic != HELLO_MAGIC {
        return Err(CoreError::Transport(format!(
            "HELLO magic {magic:#x} is not {HELLO_MAGIC:#x}"
        )));
    }
    if version != PROTO_VERSION {
        return Err(CoreError::Transport(format!(
            "peer speaks protocol version {version}, this driver speaks {PROTO_VERSION}"
        )));
    }
    Ok(u32::from_le_bytes(body[8..12].try_into().unwrap()))
}

/// Everything a server process needs to build its runtime, carried by the
/// WELCOME frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Welcome {
    /// Driver-side client count (clients occupy ranks `0..clients`).
    pub clients: u32,
    /// Server count (servers occupy ranks `clients..clients+servers`).
    pub servers: u32,
    /// The rank assigned to this server.
    pub rank: u32,
    /// JIT optimisation level for the server runtime.
    pub opt: OptLevel,
    /// Whether a fault plan is installed (reliable delivery on).
    pub reliable: bool,
    /// Whether the reliable layer estimates its RTO adaptively (Jacobson
    /// SRTT/RTTVAR) or pins it at `rto`.
    pub adaptive: bool,
    /// Reliability: initial retransmission timeout, nanoseconds.
    pub rto: u64,
    /// Reliability: backoff cap, nanoseconds.
    pub rto_max: u64,
    /// The server target triple, in its textual form.
    pub triple: TargetTriple,
}

impl Welcome {
    /// The reliability tunables this WELCOME configures.
    pub fn rel_config(&self) -> RelConfig {
        RelConfig {
            rto: self.rto,
            rto_max: self.rto_max,
            adaptive: self.adaptive,
        }
    }
}

/// Encode a WELCOME body.
pub fn encode_welcome(w: &Welcome) -> Vec<u8> {
    let triple = w.triple.to_string();
    let mut out = Vec::with_capacity(33 + triple.len());
    out.extend_from_slice(&w.clients.to_le_bytes());
    out.extend_from_slice(&w.servers.to_le_bytes());
    out.extend_from_slice(&w.rank.to_le_bytes());
    out.push(match w.opt {
        OptLevel::O0 => 0,
        OptLevel::O1 => 1,
        OptLevel::O2 => 2,
        OptLevel::O3 => 3,
    });
    out.push(w.reliable as u8);
    out.push(w.adaptive as u8);
    out.extend_from_slice(&w.rto.to_le_bytes());
    out.extend_from_slice(&w.rto_max.to_le_bytes());
    out.extend_from_slice(&(triple.len() as u16).to_le_bytes());
    out.extend_from_slice(triple.as_bytes());
    out
}

/// Decode a WELCOME body.
pub fn decode_welcome(body: &[u8]) -> Result<Welcome> {
    let err = |m: &str| CoreError::Transport(format!("bad WELCOME: {m}"));
    if body.len() < 33 {
        return Err(err("shorter than the fixed header"));
    }
    let clients = u32::from_le_bytes(body[0..4].try_into().unwrap());
    let servers = u32::from_le_bytes(body[4..8].try_into().unwrap());
    let rank = u32::from_le_bytes(body[8..12].try_into().unwrap());
    let opt = match body[12] {
        0 => OptLevel::O0,
        1 => OptLevel::O1,
        2 => OptLevel::O2,
        3 => OptLevel::O3,
        other => return Err(err(&format!("unknown opt level {other}"))),
    };
    let reliable = body[13] != 0;
    let adaptive = body[14] != 0;
    let rto = u64::from_le_bytes(body[15..23].try_into().unwrap());
    let rto_max = u64::from_le_bytes(body[23..31].try_into().unwrap());
    let triple_len = u16::from_le_bytes(body[31..33].try_into().unwrap()) as usize;
    if body.len() != 33 + triple_len {
        return Err(err("triple length disagrees with the body"));
    }
    let triple_str = std::str::from_utf8(&body[33..]).map_err(|_| err("triple is not UTF-8"))?;
    let triple = TargetTriple::parse(triple_str)
        .ok_or_else(|| err(&format!("unknown triple `{triple_str}`")))?;
    Ok(Welcome {
        clients,
        servers,
        rank,
        opt,
        reliable,
        adaptive,
        rto,
        rto_max,
        triple,
    })
}

/// One endpoint's reliability digest, as carried by [`TAG_REL_INFO`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RelInfo {
    /// Frames sent but not yet cumulatively acked.
    pub unacked: u64,
    /// Nanoseconds until the earliest armed retransmission deadline
    /// (`u64::MAX` when nothing is armed).
    pub remaining_ns: u64,
    /// Cumulative reliability counters.
    pub metrics: RelMetrics,
    /// Health of the endpoint's most-stressed link (highest unacked count,
    /// RTO breaking ties): the fixed-size stand-in for the full per-link
    /// table, which only the owning process holds.  `None` when no link has
    /// carried traffic yet.
    pub health: Option<LinkHealth>,
}

/// Pick the most-stressed link of a health table: most unacked frames,
/// widest RTO as the tie-break.  The fixed-size [`RelInfo`] digest carries
/// this one row.
pub fn most_stressed(health: &[LinkHealth]) -> Option<LinkHealth> {
    health
        .iter()
        .max_by_key(|h| (h.unacked, h.rto, h.peer))
        .copied()
}

/// Encode a [`TAG_REL_INFO`] body (104 bytes: 13 little-endian u64 fields).
pub fn encode_rel_info(info: &RelInfo) -> Vec<u8> {
    let h = info.health.unwrap_or_default();
    let fields = [
        info.unacked,
        info.remaining_ns,
        info.metrics.retransmits,
        info.metrics.dup_drops,
        info.metrics.out_of_order,
        info.metrics.acks_sent,
        info.health.is_some() as u64,
        h.peer as u64,
        h.srtt,
        h.rttvar,
        h.rto,
        h.unacked,
        h.silent_rounds as u64,
    ];
    let mut out = Vec::with_capacity(104);
    for f in fields {
        out.extend_from_slice(&f.to_le_bytes());
    }
    out
}

/// Decode a [`TAG_REL_INFO`] body.
pub fn decode_rel_info(body: &[u8]) -> Result<RelInfo> {
    if body.len() != 104 {
        return Err(CoreError::Transport(format!(
            "REL_INFO must be 104 bytes, got {}",
            body.len()
        )));
    }
    let f = |i: usize| u64::from_le_bytes(body[i * 8..i * 8 + 8].try_into().unwrap());
    let health = (f(6) != 0).then(|| LinkHealth {
        peer: f(7) as u32,
        srtt: f(8),
        rttvar: f(9),
        rto: f(10),
        unacked: f(11),
        silent_rounds: f(12) as u32,
    });
    Ok(RelInfo {
        unacked: f(0),
        remaining_ns: f(1),
        metrics: RelMetrics {
            retransmits: f(2),
            dup_drops: f(3),
            out_of_order: f(4),
            acks_sent: f(5),
        },
        health,
    })
}

/// Scheduling tunables of the socket backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SocketTuning {
    /// How long one driver `step` keeps polling for traffic before reporting
    /// an idle step.
    pub step_timeout: Duration,
    /// Upper bound one `step` keeps waiting while writes are still queued
    /// toward server processes.
    pub busy_step_timeout: Duration,
    /// Sleep between poll iterations when the sockets are quiet.
    pub poll_interval: Duration,
    /// How long a poll loop busy-yields before it starts sleeping
    /// `poll_interval` per iteration — the latency/CPU trade: a socket round
    /// trip is tens of microseconds, far below any sleep quantum.
    pub spin_window: Duration,
    /// Consecutive idle steps before waits give up (server processes may be
    /// mid-computation with nothing on the wire).
    pub idle_grace: u32,
    /// How long a control-plane round trip (peek/poke/stats/AM deploy) may
    /// take.
    pub control_timeout: Duration,
    /// How long the driver waits for every server process to dial in and
    /// complete the HELLO/WELCOME handshake.
    pub handshake_timeout: Duration,
    /// How long `shutdown` waits for a server process to exit voluntarily
    /// after the SHUTDOWN frame before killing it.
    pub shutdown_timeout: Duration,
    /// Recovery mode: how long a link may be silent before the driver sends
    /// a liveness PING.
    pub ping_interval: Duration,
    /// Recovery mode: how long an unanswered PING may ride before the rank
    /// is declared dead.
    pub ping_timeout: Duration,
    /// Recovery mode: delay before the first respawn/rejoin attempt; doubles
    /// per failed attempt.
    pub recovery_backoff: Duration,
    /// Recovery mode: ceiling of the respawn backoff.
    pub recovery_backoff_max: Duration,
    /// Recovery mode: give up on a rank after this many consecutive failed
    /// respawn attempts (the link then stays dead with its typed error).
    pub max_respawns: u32,
}

impl Default for SocketTuning {
    fn default() -> Self {
        SocketTuning {
            step_timeout: Duration::from_millis(20),
            busy_step_timeout: Duration::from_secs(1),
            poll_interval: Duration::from_micros(500),
            spin_window: Duration::from_micros(300),
            idle_grace: 2,
            control_timeout: Duration::from_secs(10),
            handshake_timeout: Duration::from_secs(10),
            shutdown_timeout: Duration::from_secs(5),
            ping_interval: Duration::from_millis(250),
            ping_timeout: Duration::from_secs(1),
            recovery_backoff: Duration::from_millis(30),
            recovery_backoff_max: Duration::from_secs(2),
            max_respawns: 8,
        }
    }
}

/// How a [`super::ClusterBuilder`] should set up the socket backend.
#[derive(Debug, Clone)]
pub struct SocketConfig {
    /// Endpoint the driver listens on.  `None` picks a fresh Unix-domain
    /// socket under the system temp directory.
    pub addr: Option<SocketSpec>,
    /// The server binary to spawn (a `tc-socket-server`-style executable).
    /// `None` falls back to `TC_SOCKET_SERVER_BIN` and then to a sibling of
    /// the current executable.
    pub server_bin: Option<PathBuf>,
    /// Spawn the server processes (default).  `false` waits for externally
    /// launched servers to dial in instead.
    pub spawn_servers: bool,
    /// Self-heal dead server ranks: detect death (socket failure or ping
    /// silence), respawn the process (or await an external rejoin) with
    /// bounded exponential backoff, re-run the handshake, re-deploy AMs,
    /// replay recorded server-memory writes, and replay unacked reliable
    /// frames.  Off by default: without it a dead rank stays dead and
    /// replays its typed error, the PR 6 semantics.
    pub recover: bool,
    /// Override the reliability tunables (defaults to
    /// [`RelConfig::threads_default`]; only meaningful with a fault plan).
    pub rel_config: Option<RelConfig>,
    /// Scheduling tunables.
    pub tuning: SocketTuning,
}

impl Default for SocketConfig {
    fn default() -> Self {
        SocketConfig {
            addr: None,
            server_bin: None,
            spawn_servers: true,
            recover: false,
            rel_config: None,
            tuning: SocketTuning::default(),
        }
    }
}

fn default_unix_spec() -> SocketSpec {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    SocketSpec::Unix(std::env::temp_dir().join(format!("tc-net-{}-{}.sock", std::process::id(), n)))
}

/// Locate the server binary: explicit config, then the
/// `TC_SOCKET_SERVER_BIN` environment variable, then a `tc-socket-server`
/// next to the current executable (covers `cargo run --example` and
/// test binaries alike).
fn resolve_server_bin(config: &SocketConfig) -> Result<PathBuf> {
    if let Some(bin) = &config.server_bin {
        return Ok(bin.clone());
    }
    if let Ok(bin) = std::env::var("TC_SOCKET_SERVER_BIN") {
        return Ok(PathBuf::from(bin));
    }
    if let Ok(exe) = std::env::current_exe() {
        let mut dirs = Vec::new();
        if let Some(d) = exe.parent() {
            dirs.push(d.to_path_buf());
            if let Some(d2) = d.parent() {
                dirs.push(d2.to_path_buf());
                if let Some(d3) = d2.parent() {
                    dirs.push(d3.to_path_buf());
                }
            }
        }
        for dir in dirs {
            let candidate = dir.join("tc-socket-server");
            if candidate.is_file() {
                return Ok(candidate);
            }
        }
    }
    Err(CoreError::Transport(
        "cannot locate the tc-socket-server binary: set ClusterBuilder::server_bin, \
         export TC_SOCKET_SERVER_BIN, or build the `tc-socket-server` bin target first \
         (`cargo build --bin tc-socket-server`)"
            .into(),
    ))
}

/// An encoded-but-unwrapped data-plane message buffered for retransmission:
/// op head (without the reliability prefix) plus detached payload.
type StoredEnv = (Bytes, Bytes);

/// Why a server link is no longer usable.
#[derive(Debug, Clone)]
enum LinkState {
    /// Handshaken and healthy.
    Active,
    /// The peer announced a voluntary close (BYE); EOF is expected.
    Closing,
    /// The link failed; the typed error is replayed to anyone who touches
    /// the rank.
    Dead(CoreError),
}

/// Driver-side state of one server process.
struct ServerLink {
    conn: Option<Connection>,
    child: Option<ChildGuard>,
    state: LinkState,
    /// Latest reliability digest published by the server.  `remaining_ns`
    /// has been rebased onto the driver clock (absolute deadline).
    rel_unacked: u64,
    rel_deadline_abs: u64,
    rel_metrics: RelMetrics,
    /// Most-stressed-link health digest published by the server.
    rel_health: Option<LinkHealth>,
    /// Last instant any frame arrived from this link (liveness baseline).
    last_activity: Instant,
    /// When an outstanding liveness PING was sent, if any.
    ping_sent_at: Option<Instant>,
    /// Consecutive failed respawn attempts since the last heal.
    respawn_attempts: u32,
    /// When the next respawn/rejoin attempt is due (recovery mode).
    next_attempt_at: Option<Instant>,
}

impl ServerLink {
    fn empty() -> Self {
        ServerLink {
            conn: None,
            child: None,
            state: LinkState::Active,
            rel_unacked: 0,
            rel_deadline_abs: u64::MAX,
            rel_metrics: RelMetrics::default(),
            rel_health: None,
            last_activity: Instant::now(),
            ping_sent_at: None,
            respawn_attempts: 0,
            next_attempt_at: None,
        }
    }
}

/// Driver-side chaos state (mirrors the threaded backend's `DriverChaos`).
struct SocketChaos {
    session: ChaosSession,
    /// One reliability state machine per client rank — sequence spaces of
    /// different clients must never interfere.
    rels: Vec<ReliableSet<StoredEnv>>,
    /// Held-back frames implementing delay/reorder: one slot per directed
    /// link, released behind the link's next traffic.
    held: HashMap<(usize, usize), Frame>,
    last_tick: Instant,
    tick: Duration,
    rto_max: u64,
}

/// The cross-process cluster backend (OS processes + sockets, wall-clock
/// time).
pub struct SocketTransport {
    clients: Vec<NodeRuntime>,
    links: Vec<ServerLink>,
    listener: Option<Listener>,
    servers: usize,
    errors: Vec<CoreError>,
    /// Fatal link errors waiting to be surfaced from `step`.
    pending_errors: VecDeque<CoreError>,
    next_token: u64,
    tuning: SocketTuning,
    chaos: Option<SocketChaos>,
    epoch: Instant,
    stalled_since: Option<Instant>,
    delivered: u64,
    dropped: u64,
    shut_down: bool,
    /// Frames read but not yet routed (control round trips intercept their
    /// replies here).
    inbox: VecDeque<Frame>,
    /// Self-healing enabled ([`SocketConfig::recover`]).
    recover: bool,
    /// Re-entrancy guard: a heal in progress drives the pump machinery,
    /// which must not start a second heal underneath it.
    healing: bool,
    /// Respawn ingredients, retained for recovery mode.
    spawn_servers: bool,
    server_bin: Option<PathBuf>,
    connect_spec: Option<SocketSpec>,
    /// AM names in deploy order, replayed to a healed rank so its handler
    /// ids line up with the cluster's.
    deployed_ams: Vec<String>,
    /// Latest server-memory write per (rank, addr), replayed to a healed
    /// rank to rebuild its data region (e.g. a `PointerTable` shard image).
    /// Only recorded in recovery mode.
    poke_log: std::collections::BTreeMap<(usize, u64), Vec<u8>>,
    /// Connections accepted but not yet through their HELLO (recovery mode).
    rejoining: Vec<Connection>,
    /// Successful heals, for tests and the recovery bench.
    heals: u64,
    /// WELCOME ingredients, retained for recovery-mode re-handshakes.
    opt_level: OptLevel,
    server_triple: TargetTriple,
    rel_cfg: RelConfig,
}

impl std::fmt::Debug for SocketTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SocketTransport")
            .field("clients", &self.clients.len())
            .field("servers", &self.servers)
            .field("errors", &self.errors.len())
            .finish()
    }
}

impl SocketTransport {
    /// Start the backend: bind the listener, spawn (or await) `servers`
    /// server processes, run the HELLO/WELCOME handshake with each, and
    /// return once every rank is connected.
    #[allow(clippy::too_many_arguments)]
    pub fn connect_config(
        clients: usize,
        servers: usize,
        client_triple: TargetTriple,
        server_triple: TargetTriple,
        opt_level: OptLevel,
        fault_plan: Option<FaultPlan>,
        config: SocketConfig,
    ) -> Result<Self> {
        let clients = clients.max(1);
        let total = (clients + servers) as u32;
        let tuning = config.tuning;
        let spec = config.addr.clone().unwrap_or_else(default_unix_spec);
        let listener = Listener::bind(&spec)
            .map_err(|e| CoreError::Transport(format!("binding {spec}: {e}")))?;
        let actual = listener
            .local_spec()
            .map_err(|e| CoreError::Transport(e.to_string()))?;

        let epoch = Instant::now();
        let rel_cfg = config.rel_config.unwrap_or_else(RelConfig::threads_default);
        let chaos = fault_plan.map(|plan| SocketChaos {
            session: ChaosSession::new(plan),
            rels: (0..clients).map(|_| ReliableSet::new(rel_cfg)).collect(),
            held: HashMap::new(),
            last_tick: Instant::now(),
            tick: Duration::from_nanos(rel_cfg.rto / 2),
            rto_max: rel_cfg.rto_max,
        });
        let reliable = chaos.is_some();

        let mut links: Vec<ServerLink> = (0..servers).map(|_| ServerLink::empty()).collect();
        let mut server_bin = None;
        if config.spawn_servers {
            let bin = resolve_server_bin(&config)?;
            for (idx, link) in links.iter_mut().enumerate() {
                let rank = (clients + idx) as u32;
                link.child = Some(
                    tc_net::spawn_server(&bin, &actual, rank)
                        .map_err(|e| CoreError::Transport(e.to_string()))?,
                );
            }
            server_bin = Some(bin);
        }

        // Handshake: accept connections, read HELLOs, assign ranks, send
        // WELCOMEs, until every server rank has a live link.
        let deadline = Instant::now() + tuning.handshake_timeout;
        let mut pending: Vec<Connection> = Vec::new();
        let mut connected = 0usize;
        while connected < servers {
            if Instant::now() >= deadline {
                return Err(CoreError::Transport(format!(
                    "socket handshake timed out with {connected}/{servers} servers connected \
                     on {actual}"
                )));
            }
            for link in links.iter_mut() {
                if let Some(child) = link.child.as_mut() {
                    if !child.alive() {
                        return Err(CoreError::Transport(format!(
                            "server process for rank {} exited during the handshake",
                            child.rank()
                        )));
                    }
                }
            }
            match listener.accept() {
                Ok(Some(conn)) => pending.push(conn),
                Ok(None) => {}
                Err(e) => return Err(CoreError::Transport(format!("accept on {actual}: {e}"))),
            }
            let mut still_pending = Vec::new();
            for mut conn in pending.drain(..) {
                let mut frames = Vec::new();
                match conn.pump_read(&mut frames) {
                    Ok(()) => {}
                    Err(NetError::PeerClosed { .. }) => continue, // gave up; drop it
                    Err(e) => return Err(CoreError::Transport(e.to_string())),
                }
                let Some(hello) = frames.into_iter().find(|f| f.tag == TAG_HELLO) else {
                    still_pending.push(conn);
                    continue;
                };
                let wanted = decode_hello(hello.data.as_slice())?;
                let idx = if wanted == RANK_ANY {
                    match links.iter().position(|l| l.conn.is_none()) {
                        Some(i) => i,
                        None => {
                            return Err(CoreError::Transport(
                                "a server asked for a rank but all are taken".into(),
                            ))
                        }
                    }
                } else {
                    let rank = wanted as usize;
                    if rank < clients || rank >= clients + servers {
                        return Err(CoreError::Transport(format!(
                            "HELLO requested rank {rank}, valid servers are {}..{}",
                            clients,
                            clients + servers
                        )));
                    }
                    if links[rank - clients].conn.is_some() {
                        return Err(CoreError::Transport(format!(
                            "two servers claimed rank {rank}"
                        )));
                    }
                    rank - clients
                };
                let rank = (clients + idx) as u32;
                let welcome = Welcome {
                    clients: clients as u32,
                    servers: servers as u32,
                    rank,
                    opt: opt_level,
                    reliable,
                    adaptive: rel_cfg.adaptive,
                    rto: rel_cfg.rto,
                    rto_max: rel_cfg.rto_max,
                    triple: server_triple,
                };
                conn.queue(Frame::new(
                    DRIVER_PORT,
                    rank,
                    TAG_WELCOME,
                    encode_welcome(&welcome),
                ));
                while conn.pending_writes() > 0 {
                    conn.pump_write()
                        .map_err(|e| CoreError::Transport(e.to_string()))?;
                    if conn.pending_writes() > 0 {
                        std::thread::sleep(Duration::from_micros(200));
                    }
                }
                links[idx].conn = Some(conn);
                links[idx].last_activity = Instant::now();
                connected += 1;
            }
            pending = still_pending;
            if connected < servers {
                std::thread::sleep(Duration::from_millis(1));
            }
        }

        Ok(SocketTransport {
            clients: (0..clients)
                .map(|c| {
                    NodeRuntime::with_opt_level(
                        tc_ucx::WorkerAddr(c as u32),
                        total,
                        client_triple,
                        opt_level,
                    )
                })
                .collect(),
            links,
            listener: Some(listener),
            servers,
            errors: Vec::new(),
            pending_errors: VecDeque::new(),
            next_token: 1,
            tuning,
            chaos,
            epoch,
            stalled_since: None,
            delivered: 0,
            dropped: 0,
            shut_down: false,
            inbox: VecDeque::new(),
            recover: config.recover,
            healing: false,
            spawn_servers: config.spawn_servers,
            server_bin,
            connect_spec: Some(actual),
            deployed_ams: Vec::new(),
            poke_log: std::collections::BTreeMap::new(),
            rejoining: Vec::new(),
            heals: 0,
            opt_level,
            server_triple,
            rel_cfg,
        })
    }

    /// The endpoint the driver is listening on.
    pub fn local_spec(&self) -> Option<SocketSpec> {
        self.listener.as_ref().and_then(|l| l.local_spec().ok())
    }

    /// Errors reported by server processes (or transport-level decode
    /// failures) that were not fatal to a link.
    pub fn errors(&self) -> &[CoreError] {
        &self.errors
    }

    /// Number of spawned server processes still running.
    pub fn live_children(&mut self) -> usize {
        self.links
            .iter_mut()
            .filter_map(|l| l.child.as_mut())
            .map(|c| c.alive() as usize)
            .sum()
    }

    /// Kill the spawned process behind server index `idx` (rank
    /// `clients + idx`) — the fault-injection hook for peer-death tests.
    pub fn kill_server(&mut self, idx: usize) {
        if let Some(child) = self.links.get_mut(idx).and_then(|l| l.child.as_mut()) {
            child.kill();
        }
    }

    /// Snapshot of the injected-fault counters (chaos mode only).
    pub fn chaos_stats(&self) -> Option<ChaosStats> {
        self.chaos.as_ref().map(|c| c.session.stats())
    }

    fn now(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Classify a socket-plane failure on the link of server `idx` into the
    /// typed core error space and remember it.
    fn fail_link(&mut self, idx: usize, e: NetError) {
        let rank = self.clients.len() + idx;
        let link = &mut self.links[idx];
        if matches!(link.state, LinkState::Dead(_)) {
            return;
        }
        let expected = self.shut_down || matches!(link.state, LinkState::Closing);
        let err = match e {
            NetError::PeerClosed {
                mid_frame: false, ..
            } if expected => {
                // A clean close we asked for: not an error at all.
                link.conn = None;
                link.state = LinkState::Closing;
                return;
            }
            NetError::PeerClosed {
                mid_frame: false, ..
            } => CoreError::PeerDisconnected {
                rank,
                detail: "connection closed".into(),
            },
            NetError::PeerClosed {
                mid_frame: true,
                wanted,
                got,
            } => CoreError::ShortRead {
                rank,
                addr: 0,
                wanted,
                got,
            },
            other => CoreError::PeerDisconnected {
                rank,
                detail: other.to_string(),
            },
        };
        self.fail_link_with(idx, err);
    }

    /// Mark server `idx`'s link dead with a ready-made typed error.  Without
    /// recovery the error also surfaces from the next `step`; with recovery
    /// it stays sticky on the link (control-plane ops targeting the rank
    /// fail fast) while the health monitor schedules a respawn.
    fn fail_link_with(&mut self, idx: usize, err: CoreError) {
        let link = &mut self.links[idx];
        if matches!(link.state, LinkState::Dead(_)) {
            return;
        }
        strace!("[driver] link {} dead: {err}", self.clients.len() + idx);
        link.conn = None;
        link.state = LinkState::Dead(err.clone());
        link.ping_sent_at = None;
        link.next_attempt_at = None;
        // The old incarnation's published digest is stale; a dead rank has
        // no server-side reliability state anymore.
        link.rel_unacked = 0;
        link.rel_deadline_abs = u64::MAX;
        link.rel_health = None;
        if !self.recover {
            self.pending_errors.push_back(err);
        }
    }

    /// Liveness monitor (recovery mode): ping links that have been silent
    /// past the ping interval, and declare ranks whose PING went unanswered
    /// past the ping timeout dead.
    fn health_check(&mut self) {
        if !self.recover || self.shut_down {
            return;
        }
        let mut timed_out = Vec::new();
        for (idx, link) in self.links.iter_mut().enumerate() {
            if link.conn.is_none() || !matches!(link.state, LinkState::Active) {
                continue;
            }
            match link.ping_sent_at {
                Some(at) => {
                    if at.elapsed() >= self.tuning.ping_timeout {
                        timed_out.push(idx);
                    }
                }
                None => {
                    if link.last_activity.elapsed() >= self.tuning.ping_interval {
                        let nonce = self.next_token;
                        self.next_token += 1;
                        let rank = (self.clients.len() + idx) as u32;
                        if let Some(conn) = link.conn.as_mut() {
                            conn.queue(Frame::new(
                                DRIVER_PORT,
                                rank,
                                TAG_PING,
                                nonce.to_le_bytes().to_vec(),
                            ));
                            link.ping_sent_at = Some(Instant::now());
                        }
                    }
                }
            }
        }
        for idx in timed_out {
            let rank = self.clients.len() + idx;
            self.fail_link_with(
                idx,
                CoreError::PeerDisconnected {
                    rank,
                    detail: format!(
                        "no PONG within {:?} (liveness probe)",
                        self.tuning.ping_timeout
                    ),
                },
            );
        }
    }

    /// WELCOME for (re)admitting server rank `rank`.
    fn make_welcome(&self, rank: u32) -> Welcome {
        Welcome {
            clients: self.clients.len() as u32,
            servers: self.servers as u32,
            rank,
            opt: self.opt_level,
            reliable: self.chaos.is_some(),
            adaptive: self.rel_cfg.adaptive,
            rto: self.rel_cfg.rto,
            rto_max: self.rel_cfg.rto_max,
            triple: self.server_triple,
        }
    }

    /// Exponential respawn backoff: `recovery_backoff · 2^attempt`, capped.
    fn recovery_delay(&self, attempt: u32) -> Duration {
        let mult = 1u32 << attempt.min(10);
        self.tuning
            .recovery_backoff
            .saturating_mul(mult)
            .min(self.tuning.recovery_backoff_max)
    }

    /// The recovery driver (recovery mode): schedule respawns of dead ranks
    /// with bounded exponential backoff, admit rejoining connections through
    /// a fresh HELLO/WELCOME handshake, and heal admitted links.  Called
    /// from the step and control-wait loops; a no-op while a heal is
    /// already in progress underneath us.
    fn poll_recovery(&mut self) {
        if !self.recover || self.shut_down || self.healing {
            return;
        }
        self.healing = true;
        self.poll_recovery_inner();
        self.healing = false;
    }

    fn poll_recovery_inner(&mut self) {
        let clients = self.clients.len();
        // Respawn scheduling (spawn mode only; external servers rejoin on
        // their own schedule).
        if self.spawn_servers {
            for idx in 0..self.links.len() {
                if !matches!(self.links[idx].state, LinkState::Dead(_)) {
                    continue;
                }
                let attempts = self.links[idx].respawn_attempts;
                match self.links[idx].next_attempt_at {
                    None => {
                        if attempts >= self.tuning.max_respawns {
                            continue; // gave up; the rank stays dead
                        }
                        let delay = self.recovery_delay(attempts);
                        self.links[idx].next_attempt_at = Some(Instant::now() + delay);
                    }
                    Some(at) if Instant::now() >= at => {
                        if attempts >= self.tuning.max_respawns {
                            // Respawn budget exhausted — the rank becomes
                            // terminally failed (surfaced by failed_ranks).
                            self.links[idx].next_attempt_at = None;
                            continue;
                        }
                        // Allow the spawned child a generous window to dial
                        // back in before the next (backed-off) attempt
                        // replaces it.
                        let next = self
                            .recovery_delay(attempts + 1)
                            .max(Duration::from_millis(500));
                        let link = &mut self.links[idx];
                        link.respawn_attempts += 1;
                        link.next_attempt_at = Some(Instant::now() + next);
                        if let Some(child) = link.child.as_mut() {
                            child.kill();
                            child.wait_timeout(Duration::from_millis(50));
                        }
                        link.child = None;
                        let rank = (clients + idx) as u32;
                        let (Some(bin), Some(spec)) =
                            (self.server_bin.as_ref(), self.connect_spec.as_ref())
                        else {
                            continue;
                        };
                        strace!("[driver] respawning rank {rank} (attempt {})", attempts + 1);
                        match tc_net::spawn_server(bin, spec, rank) {
                            Ok(child) => self.links[idx].child = Some(child),
                            Err(e) => self.errors.push(CoreError::Transport(format!(
                                "respawning server rank {rank}: {e}"
                            ))),
                        }
                    }
                    Some(_) => {}
                }
            }
        }
        // Admission: accept dialing connections while any rank is dead,
        // walk their HELLOs, and heal the links they claim.
        let any_dead = self
            .links
            .iter()
            .any(|l| matches!(l.state, LinkState::Dead(_)));
        if !any_dead && self.rejoining.is_empty() {
            return;
        }
        if let Some(listener) = self.listener.as_ref() {
            loop {
                match listener.accept() {
                    Ok(Some(conn)) => self.rejoining.push(conn),
                    Ok(None) => break,
                    Err(e) => {
                        self.errors
                            .push(CoreError::Transport(format!("recovery accept: {e}")));
                        break;
                    }
                }
            }
        }
        let mut still = Vec::new();
        let mut admitted = Vec::new();
        for mut conn in std::mem::take(&mut self.rejoining) {
            let mut frames = Vec::new();
            match conn.pump_read(&mut frames) {
                Ok(()) => {}
                Err(NetError::PeerClosed { .. }) => continue, // gave up; drop it
                Err(e) => {
                    self.errors.push(CoreError::Transport(e.to_string()));
                    continue;
                }
            }
            let Some(hello) = frames.into_iter().find(|f| f.tag == TAG_HELLO) else {
                still.push(conn);
                continue;
            };
            let wanted = match decode_hello(hello.data.as_slice()) {
                Ok(w) => w,
                Err(e) => {
                    self.errors.push(e);
                    continue;
                }
            };
            let dead_and_free =
                |l: &ServerLink| matches!(l.state, LinkState::Dead(_)) && l.conn.is_none();
            let idx = if wanted == RANK_ANY {
                self.links.iter().position(dead_and_free)
            } else {
                let rank = wanted as usize;
                (rank >= clients
                    && rank < clients + self.servers
                    && dead_and_free(&self.links[rank - clients]))
                .then(|| rank - clients)
            };
            let Some(idx) = idx else {
                // No dead rank wants this connection; drop it.
                continue;
            };
            let rank = (clients + idx) as u32;
            conn.queue(Frame::new(
                DRIVER_PORT,
                rank,
                TAG_WELCOME,
                encode_welcome(&self.make_welcome(rank)),
            ));
            let drain_deadline = Instant::now() + Duration::from_secs(2);
            let mut failed = false;
            while conn.pending_writes() > 0 {
                if conn.pump_write().is_err() || Instant::now() >= drain_deadline {
                    failed = true;
                    break;
                }
                if conn.pending_writes() > 0 {
                    std::thread::sleep(Duration::from_micros(200));
                }
            }
            if failed {
                continue;
            }
            self.links[idx].conn = Some(conn);
            admitted.push(idx);
        }
        self.rejoining = still;
        for idx in admitted {
            if let Err(e) = self.heal_link(idx) {
                // The rank died again mid-heal; fail_link already re-marked
                // it and the next poll reschedules.
                self.errors.push(e);
            }
        }
    }

    /// Bring a freshly re-handshaken link back into service: rebuild the
    /// reborn process's control-plane state (AM catalog in deploy order,
    /// recorded memory writes), renumber and replay the reliable frames the
    /// driver retained for it, and tell surviving servers to do the same.
    fn heal_link(&mut self, idx: usize) -> Result<()> {
        let clients = self.clients.len();
        let rank = clients + idx;
        strace!("[driver] healing rank {rank}");
        {
            let link = &mut self.links[idx];
            link.state = LinkState::Active;
            link.last_activity = Instant::now();
            link.ping_sent_at = None;
            link.next_attempt_at = None;
            link.rel_unacked = 0;
            link.rel_deadline_abs = u64::MAX;
            link.rel_health = None;
        }
        // Reset the reliable links *before* any traffic can flow: the
        // reborn rank has a fresh sequence space in both directions.  The
        // retained unacked frames are re-registered now (so ops posted
        // during the heal order behind them) but only hit the wire after
        // the control plane below is rebuilt — they may invoke AM handlers.
        let mut replay = Vec::new();
        if let Some(chaos) = &mut self.chaos {
            let now = self.epoch.elapsed().as_nanos() as u64;
            chaos
                .held
                .retain(|&(src, dst), _| src != rank && dst != rank);
            for c in 0..chaos.rels.len() {
                for (head, payload) in chaos.rels[c].reset_peer(rank as u32) {
                    let (seq, ack) =
                        chaos.rels[c].send(rank as u32, (head.clone(), payload.clone()), now);
                    let data = wire::encode_rel_head(seq, ack, &head);
                    replay.push(Frame::with_payload(
                        c as u32,
                        rank as u32,
                        wire::TAG_ROP,
                        data,
                        payload,
                    ));
                }
            }
        }
        // Re-deploy the AM catalog in original deploy order so the reborn
        // process's handler ids line up with the cluster's.
        for name in self.deployed_ams.clone() {
            let reply = self.control_roundtrip(rank, TAG_AM_DEPLOY, TAG_AM_ACK, name.as_bytes())?;
            if reply != [1] {
                return Err(CoreError::UnknownAmHandler {
                    name: format!("{name} (lost from the server AM catalog after respawn)"),
                });
            }
        }
        // Replay the recorded memory writes (latest value per address —
        // e.g. this rank's PointerTable shard image).
        let pokes: Vec<(u64, Vec<u8>)> = self
            .poke_log
            .range((rank, 0)..=(rank, u64::MAX))
            .map(|(&(_, addr), data)| (addr, data.clone()))
            .collect();
        for (addr, data) in pokes {
            self.poke_server(rank, addr, &data)?;
        }
        // Now the replay can flow, along with the surviving servers'
        // renumbered re-sends.
        for f in replay {
            self.chaos_route(f);
        }
        if self.chaos.is_some() {
            for other in 0..self.links.len() {
                if other == idx || self.links[other].conn.is_none() {
                    continue;
                }
                let other_rank = (clients + other) as u32;
                let _ = self.queue_to_server(
                    clients + other,
                    Frame::new(
                        DRIVER_PORT,
                        other_rank,
                        TAG_LINK_RESET,
                        (rank as u32).to_le_bytes().to_vec(),
                    ),
                );
            }
        }
        self.pump_writes();
        self.links[idx].respawn_attempts = 0;
        self.heals += 1;
        strace!("[driver] rank {rank} healed");
        Ok(())
    }

    /// Queue a frame toward server rank `rank`.  Dead links replay their
    /// typed error.
    fn queue_to_server(&mut self, rank: usize, frame: Frame) -> Result<()> {
        let clients = self.clients.len();
        let idx = rank - clients;
        match &mut self.links[idx] {
            ServerLink {
                state: LinkState::Dead(err),
                ..
            } => Err(err.clone()),
            ServerLink {
                conn: Some(conn), ..
            } => {
                strace!(
                    "[driver] send tag={} from={} to={} data={}B payload={}B",
                    frame.tag,
                    frame.from,
                    frame.to,
                    frame.data.len(),
                    frame.payload.len()
                );
                conn.queue(frame);
                self.delivered += 1;
                Ok(())
            }
            _ => Err(CoreError::PeerDisconnected {
                rank,
                detail: "connection closed".into(),
            }),
        }
    }

    /// Pump every link's write queue; socket failures mark the link dead.
    fn pump_writes(&mut self) {
        for idx in 0..self.links.len() {
            let Some(conn) = self.links[idx].conn.as_mut() else {
                continue;
            };
            if conn.pending_writes() == 0 {
                continue;
            }
            if let Err(e) = conn.pump_write() {
                self.fail_link(idx, e);
            }
        }
    }

    /// Pump every link's read side into the inbox; failures mark links dead.
    fn pump_reads(&mut self) {
        let mut frames = Vec::new();
        for idx in 0..self.links.len() {
            frames.clear();
            let res = {
                let Some(conn) = self.links[idx].conn.as_mut() else {
                    continue;
                };
                conn.pump_read(&mut frames)
            };
            if !frames.is_empty() {
                // Any traffic is proof of life.
                self.links[idx].last_activity = Instant::now();
            }
            self.inbox.extend(frames.drain(..));
            if let Err(e) = res {
                self.fail_link(idx, e);
            }
        }
    }

    fn pending_writes_total(&self) -> usize {
        self.links
            .iter()
            .filter_map(|l| l.conn.as_ref())
            .map(|c| c.pending_writes())
            .sum()
    }

    /// Route one frame that arrived from a server connection.
    fn route_frame(&mut self, frame: Frame) {
        strace!(
            "[driver] recv tag={} from={} to={} data={}B payload={}B",
            frame.tag,
            frame.from,
            frame.to,
            frame.data.len(),
            frame.payload.len()
        );
        let clients = self.clients.len() as u32;
        match frame.tag {
            wire::TAG_OP => {
                if frame.to < clients {
                    match wire::decode_op_vectored(&frame.data, &frame.payload) {
                        Ok(msg) => self.deliver_to_client(msg),
                        Err(e) => self.errors.push(e),
                    }
                } else if (frame.to as usize) < self.clients.len() + self.servers {
                    // Server-to-server relay.
                    if let Err(e) = self.queue_to_server(frame.to as usize, frame) {
                        self.errors.push(e);
                    }
                } else {
                    self.dropped += 1;
                }
            }
            wire::TAG_ROP | wire::TAG_ACK => self.chaos_route(frame),
            wire::TAG_ERROR => self.errors.push(CoreError::Transport(
                String::from_utf8_lossy(frame.data.as_slice()).into_owned(),
            )),
            TAG_REL_INFO => {
                let idx = (frame.from as usize).wrapping_sub(self.clients.len());
                match decode_rel_info(frame.data.as_slice()) {
                    Ok(info) if idx < self.links.len() => {
                        let link = &mut self.links[idx];
                        link.rel_unacked = info.unacked;
                        link.rel_deadline_abs = if info.remaining_ns == u64::MAX {
                            u64::MAX
                        } else {
                            self.epoch.elapsed().as_nanos() as u64 + info.remaining_ns
                        };
                        link.rel_metrics = info.metrics;
                        link.rel_health = info.health;
                    }
                    Ok(_) => {}
                    Err(e) => self.errors.push(e),
                }
            }
            TAG_PONG => {
                let idx = (frame.from as usize).wrapping_sub(self.clients.len());
                if let Some(link) = self.links.get_mut(idx) {
                    link.ping_sent_at = None;
                    link.last_activity = Instant::now();
                }
            }
            TAG_BYE => {
                let idx = (frame.from as usize).wrapping_sub(self.clients.len());
                if let Some(link) = self.links.get_mut(idx) {
                    if matches!(link.state, LinkState::Active) {
                        link.state = LinkState::Closing;
                    }
                }
            }
            // Stale control replies (from a timed-out request) are dropped;
            // live ones are intercepted by `control_roundtrip` before this.
            _ => {}
        }
    }

    /// Apply the chaos engine to one reliable-plane traversal and move the
    /// surviving frames.  Without a fault plan, reliable frames are a
    /// protocol error (mirroring the threaded backend).
    fn chaos_route(&mut self, frame: Frame) {
        let Some(chaos) = &mut self.chaos else {
            self.errors.push(CoreError::Transport(
                "reliable frame without a fault plan".into(),
            ));
            return;
        };
        let src = frame.from as usize;
        let dst = frame.to as usize;
        let decision = chaos.session.decide(src, dst);
        if !decision.deliver {
            return;
        }
        let mut release = Vec::new();
        if decision.reorder || decision.delay_units > 0 {
            if decision.duplicate {
                release.push(frame.clone());
            }
            // Park this frame; release whatever the link previously parked
            // (it has now been overtaken at least once).
            if let Some(prev) = chaos.held.insert((src, dst), frame) {
                release.push(prev);
            }
        } else {
            if decision.duplicate {
                release.push(frame.clone());
            }
            release.push(frame);
            if let Some(prev) = chaos.held.remove(&(src, dst)) {
                release.push(prev);
            }
        }
        for f in release {
            self.route_reliable(f);
        }
    }

    /// Physically move one reliable frame that survived the chaos engine.
    fn route_reliable(&mut self, frame: Frame) {
        let clients = self.clients.len();
        let dst = frame.to as usize;
        if dst < clients {
            self.reliable_to_client(frame);
        } else if dst < clients + self.servers {
            if self.recover && matches!(self.links[dst - clients].state, LinkState::Dead(_)) {
                // The rank is being healed.  The frame stays buffered in its
                // sender's ReliableSet and is replayed (renumbered) once the
                // link is back; surfacing an error per retransmission would
                // flood the error log for a transient outage.
                return;
            }
            if let Err(e) = self.queue_to_server(dst, frame) {
                self.errors.push(e);
            }
        } else {
            self.errors.push(CoreError::Transport(format!(
                "reliable frame addressed to invalid rank {dst}"
            )));
        }
    }

    /// Terminate a reliable frame at a driver-side client port.
    fn reliable_to_client(&mut self, frame: Frame) {
        let port = frame.to as usize;
        let now = self.now();
        let rels_len = match &self.chaos {
            Some(c) => c.rels.len(),
            None => return,
        };
        if port >= rels_len {
            self.errors.push(CoreError::Transport(format!(
                "reliable frame addressed to unknown client port {port}"
            )));
            return;
        }
        match frame.tag {
            wire::TAG_ACK => {
                if let Ok(ack) = wire::decode_ack(frame.data.as_slice()) {
                    if let Some(chaos) = &mut self.chaos {
                        chaos.rels[port].on_ack(frame.from, ack, now);
                    }
                }
            }
            _ => {
                let (seq, ack, head) = match wire::decode_rel_head(&frame.data) {
                    Ok(parts) => parts,
                    Err(e) => {
                        self.errors.push(e);
                        return;
                    }
                };
                let out = {
                    let chaos = self.chaos.as_mut().expect("checked above");
                    chaos.rels[port].on_data(frame.from, seq, ack, (head, frame.payload), now)
                };
                let ack_frame = Frame::new(
                    port as u32,
                    frame.from,
                    wire::TAG_ACK,
                    wire::encode_ack(out.ack),
                );
                // The ack's own traversal passes the chaos engine too.
                self.chaos_route(ack_frame);
                for (h, p) in out.deliver {
                    match wire::decode_op_vectored(&h, &p) {
                        Ok(msg) => self.deliver_to_client(msg),
                        Err(e) => self.errors.push(e),
                    }
                }
            }
        }
    }

    /// Deliver one in-order fabric operation to its destination client
    /// runtime and flush anything it posted in response.
    fn deliver_to_client(&mut self, msg: tc_ucx::OutgoingMessage) {
        let dst = msg.dst.index();
        if dst >= self.clients.len() {
            self.errors.push(CoreError::Transport(format!(
                "driver received an operation for non-client rank {dst}"
            )));
            return;
        }
        self.clients[dst].deliver(msg);
        self.drain_client(dst);
        self.delivered += 1;
    }

    /// Poll everything delivered to client `c` and flush its responses.
    fn drain_client(&mut self, c: usize) {
        for outcome in self.clients[c].poll(usize::MAX) {
            if let Err(e) = outcome {
                self.errors.push(e);
            }
        }
        let _ = self.dispatch_client_outgoing(c);
    }

    /// Run every client's retransmission timer if the tick cadence elapsed.
    fn client_tick(&mut self) {
        let now = self.now();
        let mut frames = Vec::new();
        {
            let Some(chaos) = &mut self.chaos else {
                return;
            };
            if chaos.last_tick.elapsed() < chaos.tick {
                return;
            }
            chaos.last_tick = Instant::now();
            for c in 0..chaos.rels.len() {
                for f in chaos.rels[c].tick(now) {
                    let data = wire::encode_rel_head(f.seq, f.ack, &f.m.0);
                    frames.push(Frame::with_payload(
                        c as u32,
                        f.peer,
                        wire::TAG_ROP,
                        data,
                        f.m.1.clone(),
                    ));
                }
            }
        }
        for f in frames {
            self.chaos_route(f);
        }
    }

    /// Move everything client `origin` posted onto the sockets, looping
    /// until the outgoing queues are quiescent.  Client-to-client traffic is
    /// delivered directly on the driver (loopback-class, never faulted).
    fn dispatch_client_outgoing(&mut self, origin: usize) -> Result<()> {
        if self.shut_down {
            return Err(CoreError::Transport("socket transport is shut down".into()));
        }
        let clients = self.clients.len();
        let mut first_err = None;
        let mut dirty = vec![origin];
        while let Some(c) = dirty.pop() {
            loop {
                let outgoing = self.clients[c].take_outgoing();
                if outgoing.is_empty() {
                    break;
                }
                for msg in outgoing {
                    let dst = msg.dst.index();
                    if dst < clients {
                        self.clients[dst].deliver(msg);
                        for outcome in self.clients[dst].poll(usize::MAX) {
                            if let Err(e) = outcome {
                                self.errors.push(e);
                            }
                        }
                        if dst != c && !dirty.contains(&dst) {
                            dirty.push(dst);
                        }
                        continue;
                    }
                    if dst >= clients + self.servers {
                        // Misaddressed: counted as a fabric drop, like the
                        // other backends.
                        self.dropped += 1;
                        continue;
                    }
                    let (head, payload) = wire::encode_op_vectored(&msg);
                    // The payload Bytes moves into exactly one frame; the
                    // reliable path clones it once for the retransmit buffer
                    // (a refcount bump, not a copy).
                    enum Routed {
                        Rel(Frame),
                        Raw(Frame),
                    }
                    let routed = match &mut self.chaos {
                        Some(chaos) => {
                            let now = self.epoch.elapsed().as_nanos() as u64;
                            let (seq, ack) = chaos.rels[c].send(
                                dst as u32,
                                (head.clone(), payload.clone()),
                                now,
                            );
                            let data = wire::encode_rel_head(seq, ack, &head);
                            Routed::Rel(Frame::with_payload(
                                c as u32,
                                dst as u32,
                                wire::TAG_ROP,
                                data,
                                payload,
                            ))
                        }
                        None => Routed::Raw(Frame::with_payload(
                            c as u32,
                            dst as u32,
                            wire::TAG_OP,
                            head,
                            payload,
                        )),
                    };
                    match routed {
                        Routed::Rel(f) => self.chaos_route(f),
                        Routed::Raw(f) => {
                            if let Err(e) = self.queue_to_server(dst, f) {
                                if first_err.is_none() {
                                    first_err = Some(e);
                                }
                            }
                        }
                    }
                }
            }
        }
        self.pump_writes();
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// One I/O round: flush writes, read frames, route everything in the
    /// inbox.  Returns how many frames were routed.
    fn pump_round(&mut self) -> usize {
        self.pump_writes();
        self.pump_reads();
        let mut routed = 0;
        while let Some(frame) = self.inbox.pop_front() {
            self.route_frame(frame);
            routed += 1;
        }
        // Routing may have queued acks/relays; start them on their way.
        self.pump_writes();
        routed
    }

    /// Briefly yield, then back off to `poll_interval` sleeps once a quiet
    /// poll loop has outlived the spin window.
    fn poll_pause(&self, since: Instant) {
        if since.elapsed() < self.tuning.spin_window {
            std::thread::yield_now();
        } else {
            std::thread::sleep(self.tuning.poll_interval);
        }
    }

    /// Issue a control request to server `rank` and wait for its tokened
    /// reply, routing data-plane traffic that arrives in between.
    fn control_roundtrip(
        &mut self,
        rank: usize,
        request_tag: u64,
        reply_tag: u64,
        body: &[u8],
    ) -> Result<Vec<u8>> {
        let clients = self.clients.len();
        if rank < clients || rank >= clients + self.servers {
            return Err(CoreError::Transport(format!(
                "control request addressed to invalid rank {rank} ({}..={} expected)",
                clients,
                clients + self.servers - 1
            )));
        }
        let token = self.next_token;
        self.next_token += 1;
        self.queue_to_server(
            rank,
            Frame::new(
                DRIVER_PORT,
                rank as u32,
                request_tag,
                wire::encode_control(token, body),
            ),
        )?;
        let started = Instant::now();
        let deadline = started + self.tuning.control_timeout;
        loop {
            self.client_tick();
            self.health_check();
            self.poll_recovery();
            self.pump_writes();
            self.pump_reads();
            let mut reply = None;
            let mut rest = VecDeque::new();
            while let Some(frame) = self.inbox.pop_front() {
                if reply.is_none() && frame.tag == reply_tag && frame.from as usize == rank {
                    if let Ok((reply_token, reply_body)) =
                        wire::decode_control(frame.data.as_slice())
                    {
                        if reply_token == token {
                            reply = Some(reply_body.to_vec());
                            continue;
                        }
                        continue; // stale reply from an abandoned request
                    }
                }
                rest.push_back(frame);
            }
            self.inbox = rest;
            while let Some(frame) = self.inbox.pop_front() {
                self.route_frame(frame);
            }
            if let Some(body) = reply {
                return Ok(body);
            }
            if let LinkState::Dead(err) = &self.links[rank - clients].state {
                return Err(err.clone());
            }
            if Instant::now() >= deadline {
                return Err(CoreError::WaitTimeout {
                    what: format!("control reply (tag {reply_tag}) from rank {rank}"),
                });
            }
            self.poll_pause(started);
        }
    }

    /// Control-plane memory write to a server rank (TAG_POKE round trip).
    fn poke_server(&mut self, rank: usize, addr: u64, data: &[u8]) -> Result<()> {
        let mut body = Vec::with_capacity(8 + data.len());
        body.extend_from_slice(&addr.to_le_bytes());
        body.extend_from_slice(data);
        let reply = self.control_roundtrip(rank, wire::TAG_POKE, wire::TAG_POKE_ACK, &body)?;
        if reply != [1] {
            return Err(CoreError::Transport(format!(
                "poke of {} bytes at {addr:#x} on rank {rank} failed",
                data.len()
            )));
        }
        Ok(())
    }

    /// Number of successful link heals so far (recovery mode) — the hook the
    /// heal tests and the recovery bench key on.
    pub fn heals(&self) -> u64 {
        self.heals
    }
}

impl Transport for SocketTransport {
    fn backend_name(&self) -> &'static str {
        "socket"
    }

    fn node_count(&self) -> usize {
        self.servers + self.clients.len()
    }

    fn client_count(&self) -> usize {
        self.clients.len()
    }

    fn client(&self, id: ClientId) -> ClientRef<'_> {
        assert!(id.0 < self.clients.len(), "no client with id {id}");
        ClientRef::Direct(&self.clients[id.0])
    }

    fn client_mut(&mut self, id: ClientId) -> ClientRefMut<'_> {
        assert!(id.0 < self.clients.len(), "no client with id {id}");
        ClientRefMut::Direct(&mut self.clients[id.0])
    }

    fn deploy_am(&mut self, name: &str, handler: NativeAmHandler) -> Result<()> {
        // Clients deploy the closure directly; server processes deploy the
        // same-named handler from their compiled-in catalog (closures cannot
        // cross a process boundary).  Deploy order fixes the handler ids
        // cluster-wide, exactly as on the other backends.
        for client in &mut self.clients {
            client.deploy_am_handler(name.to_string(), handler.clone());
        }
        let clients = self.clients.len();
        for rank in clients..clients + self.servers {
            let reply = self.control_roundtrip(rank, TAG_AM_DEPLOY, TAG_AM_ACK, name.as_bytes())?;
            if reply != [1] {
                return Err(CoreError::UnknownAmHandler {
                    name: format!("{name} (not in the server-process AM catalog)"),
                });
            }
        }
        // Remember the catalog (in deploy order — it fixes handler ids) so
        // a healed rank can be brought back to parity.
        self.deployed_ams.push(name.to_string());
        Ok(())
    }

    fn flush_client(&mut self, id: ClientId) -> Result<()> {
        if id.0 >= self.clients.len() {
            return Err(CoreError::Transport(format!("no client with id {id}")));
        }
        self.dispatch_client_outgoing(id.0)
    }

    fn step(&mut self) -> Result<bool> {
        if self.shut_down {
            return Ok(false);
        }
        if let Some(e) = self.pending_errors.pop_front() {
            return Err(e);
        }
        let started = Instant::now();
        let step_deadline = started + self.tuning.step_timeout;
        let busy_deadline = started + self.tuning.busy_step_timeout;
        loop {
            self.client_tick();
            self.health_check();
            self.poll_recovery();
            let routed = self.pump_round();
            if let Some(e) = self.pending_errors.pop_front() {
                return Err(e);
            }
            if routed > 0 {
                self.stalled_since = None;
                return Ok(true);
            }
            let now = Instant::now();
            if now < step_deadline {
                self.poll_pause(started);
                continue;
            }
            // A full step window of silence.  Unacked reliability frames
            // keep the transport "busy" (they will retransmit), but only up
            // to a stall horizon — a frame that can never be acked (dead
            // server process, unhealable partition) must eventually let
            // waits time out.  The horizon out-waits several fully
            // backed-off retransmission rounds, like the threaded backend.
            if self.unacked_total() > 0 {
                let since = *self.stalled_since.get_or_insert(now);
                let rel_horizon = self
                    .chaos
                    .as_ref()
                    .map(|c| Duration::from_nanos(c.rto_max) * 4)
                    .unwrap_or(Duration::ZERO);
                let horizon = (self.tuning.busy_step_timeout * 10).max(rel_horizon);
                return Ok(now.duration_since(since) < horizon);
            }
            self.stalled_since = None;
            if self.pending_writes_total() > 0 && now < busy_deadline {
                self.poll_pause(started);
                continue;
            }
            return Ok(false);
        }
    }

    fn idle_grace(&self) -> u32 {
        self.tuning.idle_grace
    }

    fn take_completions(&mut self, id: ClientId) -> Vec<Completion> {
        assert!(id.0 < self.clients.len(), "no client with id {id}");
        self.clients[id.0].take_completions()
    }

    fn now_nanos(&self) -> u64 {
        self.now()
    }

    fn unacked_total(&self) -> u64 {
        let client_side: u64 = self
            .chaos
            .as_ref()
            .map(|c| c.rels.iter().map(|r| r.unacked_total()).sum())
            .unwrap_or(0);
        let server_side: u64 = self.links.iter().map(|l| l.rel_unacked).sum();
        client_side + server_side
    }

    fn next_rel_deadline(&self) -> Option<u64> {
        let client_side = self
            .chaos
            .as_ref()
            .and_then(|c| c.rels.iter().filter_map(|r| r.next_deadline()).min());
        let server_side = self
            .links
            .iter()
            .map(|l| l.rel_deadline_abs)
            .filter(|&d| d != u64::MAX)
            .min();
        match (client_side, server_side) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    fn read_memory(&mut self, rank: usize, addr: u64, len: usize) -> Result<Vec<u8>> {
        if rank < self.clients.len() {
            let mut buf = vec![0u8; len];
            self.clients[rank]
                .memory
                .read(addr, &mut buf)
                .map_err(|e| CoreError::Transport(e.to_string()))?;
            return Ok(buf);
        }
        let mut body = Vec::with_capacity(16);
        body.extend_from_slice(&addr.to_le_bytes());
        body.extend_from_slice(&(len as u64).to_le_bytes());
        let reply = self.control_roundtrip(rank, wire::TAG_PEEK, wire::TAG_PEEK_REPLY, &body)?;
        if reply.len() != len {
            return Err(CoreError::Transport(format!(
                "peek of {len} bytes at {addr:#x} on rank {rank} failed"
            )));
        }
        Ok(reply)
    }

    fn write_memory(&mut self, rank: usize, addr: u64, data: &[u8]) -> Result<()> {
        if rank < self.clients.len() {
            return self.clients[rank]
                .memory
                .write(addr, data)
                .map_err(|e| CoreError::Transport(e.to_string()));
        }
        if self.recover {
            // Latest value per (rank, addr) is enough: replays overwrite.
            self.poke_log.insert((rank, addr), data.to_vec());
        }
        self.poke_server(rank, addr, data)
    }

    fn node_stats(&mut self, rank: usize) -> Result<RuntimeStats> {
        if rank < self.clients.len() {
            return Ok(self.clients[rank].stats);
        }
        let reply = self.control_roundtrip(rank, wire::TAG_STATS, wire::TAG_STATS_REPLY, &[])?;
        wire::decode_stats(&reply)
    }

    fn metrics(&self) -> TransportMetrics {
        let (mut retransmits, mut dup_drops) = (0u64, 0u64);
        if let Some(chaos) = &self.chaos {
            for r in &chaos.rels {
                retransmits += r.metrics.retransmits;
                dup_drops += r.metrics.dup_drops;
            }
        }
        for link in &self.links {
            retransmits += link.rel_metrics.retransmits;
            dup_drops += link.rel_metrics.dup_drops;
        }
        TransportMetrics {
            messages_delivered: self.delivered,
            messages_dropped: self.dropped,
            bytes_sent: self.clients.iter().map(|c| c.stats.bytes_sent).sum(),
            retransmits,
            dup_drops,
            faults_injected: self
                .chaos
                .as_ref()
                .map(|c| c.session.stats().total_injected())
                .unwrap_or(0),
        }
    }

    fn node_reliability(&self, rank: usize) -> Option<RelMetrics> {
        let clients = self.clients.len();
        if rank < clients {
            return self.chaos.as_ref().map(|c| RelMetrics {
                retransmits: c.rels[rank].metrics.retransmits,
                dup_drops: c.rels[rank].metrics.dup_drops,
                out_of_order: c.rels[rank].metrics.out_of_order,
                acks_sent: c.rels[rank].metrics.acks_sent,
            });
        }
        if self.chaos.is_some() && rank < clients + self.servers {
            return Some(self.links[rank - clients].rel_metrics);
        }
        None
    }

    fn chaos_stats(&self) -> Option<ChaosStats> {
        SocketTransport::chaos_stats(self)
    }

    fn failed_ranks(&self) -> Vec<usize> {
        let clients = self.clients.len();
        self.links
            .iter()
            .enumerate()
            .filter(|(_, l)| {
                if !matches!(l.state, LinkState::Dead(_)) {
                    return false;
                }
                // A dead rank is *terminally* failed only once no recovery
                // can still bring it back: recovery off entirely, or the
                // respawn budget spent with no attempt pending.  (External
                // rejoin mode never gives up, so with recovery on and spawns
                // off a dead rank is perpetually "recovering", not failed.)
                !self.recover
                    || (self.spawn_servers
                        && l.respawn_attempts >= self.tuning.max_respawns
                        && l.next_attempt_at.is_none())
            })
            .map(|(idx, _)| clients + idx)
            .collect()
    }

    fn link_health(&self) -> Vec<(u32, LinkHealth)> {
        let mut out = Vec::new();
        if let Some(chaos) = &self.chaos {
            for (c, rel) in chaos.rels.iter().enumerate() {
                for h in rel.link_health() {
                    out.push((c as u32, h));
                }
            }
        }
        for (idx, link) in self.links.iter().enumerate() {
            if let Some(h) = link.rel_health {
                out.push(((self.clients.len() + idx) as u32, h));
            }
        }
        out
    }

    fn shutdown(&mut self) {
        if self.shut_down {
            return;
        }
        self.shut_down = true;
        // Ask every live server to flush and exit.
        for idx in 0..self.links.len() {
            let rank = (self.clients.len() + idx) as u32;
            if let Some(conn) = self.links[idx].conn.as_mut() {
                conn.queue(Frame::new(DRIVER_PORT, rank, TAG_SHUTDOWN, Vec::new()));
            }
        }
        let deadline = Instant::now() + self.tuning.shutdown_timeout;
        while self.pending_writes_total() > 0 && Instant::now() < deadline {
            self.pump_writes();
            if self.pending_writes_total() > 0 {
                std::thread::sleep(Duration::from_micros(500));
            }
        }
        // Reap the children; kill any that out-wait the budget.
        for link in &mut self.links {
            if let Some(child) = link.child.as_mut() {
                let remaining = deadline.saturating_duration_since(Instant::now());
                child.wait_timeout(remaining.max(Duration::from_millis(50)));
            }
            link.conn = None;
        }
        self.listener = None;
    }
}

impl Drop for SocketTransport {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hello_welcome_round_trip() {
        assert_eq!(decode_hello(&encode_hello(7)).unwrap(), 7);
        assert_eq!(decode_hello(&encode_hello(RANK_ANY)).unwrap(), RANK_ANY);
        assert!(decode_hello(&[0u8; 11]).is_err());
        let mut bad = encode_hello(1);
        bad[0] ^= 0xFF;
        assert!(decode_hello(&bad).is_err());

        let w = Welcome {
            clients: 2,
            servers: 4,
            rank: 3,
            opt: OptLevel::O3,
            reliable: true,
            adaptive: true,
            rto: 30_000_000,
            rto_max: 480_000_000,
            triple: TargetTriple::X86_64_GENERIC,
        };
        assert_eq!(decode_welcome(&encode_welcome(&w)).unwrap(), w);
        assert_eq!(
            w.rel_config(),
            RelConfig {
                rto: 30_000_000,
                rto_max: 480_000_000,
                adaptive: true
            }
        );
        assert!(decode_welcome(&[0u8; 10]).is_err());
    }

    #[test]
    fn rel_info_round_trip() {
        let mut info = RelInfo {
            unacked: 3,
            remaining_ns: 1_000_000,
            metrics: RelMetrics {
                retransmits: 5,
                dup_drops: 2,
                out_of_order: 1,
                acks_sent: 9,
            },
            health: None,
        };
        assert_eq!(decode_rel_info(&encode_rel_info(&info)).unwrap(), info);
        info.health = Some(LinkHealth {
            peer: 6,
            srtt: 120_000,
            rttvar: 40_000,
            rto: 280_000,
            unacked: 2,
            silent_rounds: 1,
        });
        assert_eq!(decode_rel_info(&encode_rel_info(&info)).unwrap(), info);
        assert!(decode_rel_info(&[0u8; 47]).is_err());
    }

    #[test]
    fn most_stressed_prefers_unacked_then_rto() {
        assert_eq!(most_stressed(&[]), None);
        let a = LinkHealth {
            peer: 1,
            unacked: 3,
            rto: 100,
            ..Default::default()
        };
        let b = LinkHealth {
            peer: 2,
            unacked: 1,
            rto: 900,
            ..Default::default()
        };
        let c = LinkHealth {
            peer: 3,
            unacked: 3,
            rto: 400,
            ..Default::default()
        };
        assert_eq!(most_stressed(&[a, b, c]), Some(c));
    }
}
