//! The discrete-event backend: all node runtimes live in-process and every
//! fabric operation travels through a virtual-time event queue over the
//! calibrated `tc-simnet` fabric and CPU models.
//!
//! This is the engine behind every table and figure reproduction:
//!
//! * each operation leaves its sender no earlier than the sender's
//!   *injection gap* allows (this is what bounds message rate);
//! * it arrives after the fabric *latency* for its size and class;
//! * handling it on the destination costs virtual CPU time: AM dispatch,
//!   cached-ifunc lookup, JIT compilation (first arrival), binary load, and
//!   the interpreter's cycle count converted at the node's clock;
//! * anything the handled message itself posted (recursive forwards, result
//!   returns, GET replies) departs after that processing completes.
//!
//! Every delivery is appended to a [`TimingLog`] so the benchmark harness can
//! reconstruct the paper's overhead breakdown (transmission / lookup / JIT /
//! execution) without re-instrumenting the runtime.

use super::{Transport, TransportMetrics};
use crate::error::{CoreError, Result};
use crate::metrics::{OutcomeKind, ProcessOutcome, RuntimeStats};
use crate::runtime::{Completion, NativeAmHandler, NodeRuntime};
use crate::sim::{DeliveryRecord, TimingLog};
use tc_bitir::TargetTriple;
use tc_jit::{Memory, OptLevel};
use tc_simnet::{EventQueue, FabricOp, Platform, SimDuration, SimTime};
use tc_ucx::{OutgoingMessage, UcpOp};

#[derive(Debug)]
struct InFlight {
    msg: OutgoingMessage,
    transmission: SimDuration,
    wire_bytes: usize,
}

/// The discrete-event cluster backend (virtual time, calibrated models).
pub struct SimTransport {
    platform: Platform,
    nodes: Vec<NodeRuntime>,
    queue: EventQueue<InFlight>,
    /// Earliest time each node's CPU is free to process the next arrival.
    node_ready_at: Vec<SimTime>,
    /// Earliest time each node's fabric injection port is free.
    link_ready_at: Vec<SimTime>,
    timings: TimingLog,
    opt_cost_factor: f64,
    errors: Vec<CoreError>,
    delivered: u64,
    dropped_misaddressed: u64,
}

impl std::fmt::Debug for SimTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimTransport")
            .field("platform", &self.platform.name)
            .field("nodes", &self.nodes.len())
            .field("now", &self.queue.now())
            .field("pending_events", &self.queue.len())
            .finish()
    }
}

impl SimTransport {
    /// Create a backend with one client (rank 0) and `servers` server nodes
    /// (ranks 1..=servers) on the given platform.
    pub fn new(platform: Platform, servers: usize) -> Self {
        Self::with_triples_and_opt(platform, servers, None, None, OptLevel::O2)
    }

    /// Full-control constructor used by the cluster builder: override the
    /// node target triples (defaulting to the platform's) and the JIT
    /// optimisation level used for cost accounting and compilation.
    pub fn with_triples_and_opt(
        platform: Platform,
        servers: usize,
        client_triple: Option<TargetTriple>,
        server_triple: Option<TargetTriple>,
        opt_level: OptLevel,
    ) -> Self {
        let total = servers + 1;
        let client_triple = client_triple.unwrap_or_else(|| {
            TargetTriple::parse(platform.client_triple).unwrap_or(TargetTriple::X86_64_GENERIC)
        });
        let server_triple = server_triple.unwrap_or_else(|| {
            TargetTriple::parse(platform.server_triple).unwrap_or(TargetTriple::AARCH64_GENERIC)
        });
        let nodes = (0..total)
            .map(|i| {
                let triple = if i == 0 { client_triple } else { server_triple };
                NodeRuntime::with_opt_level(
                    tc_ucx::WorkerAddr(i as u32),
                    total as u32,
                    triple,
                    opt_level,
                )
            })
            .collect();
        SimTransport {
            platform,
            nodes,
            queue: EventQueue::new(),
            node_ready_at: vec![SimTime::ZERO; total],
            link_ready_at: vec![SimTime::ZERO; total],
            timings: TimingLog::default(),
            opt_cost_factor: opt_level.compile_cost_factor(),
            errors: Vec::new(),
            delivered: 0,
            dropped_misaddressed: 0,
        }
    }

    /// The platform this backend models.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Timing log of every processed delivery.
    pub fn timings(&self) -> &TimingLog {
        &self.timings
    }

    /// Errors collected from node runtimes during event processing.
    pub fn errors(&self) -> &[CoreError] {
        &self.errors
    }

    /// Access a node runtime (0 = client).
    pub fn node(&self, rank: usize) -> &NodeRuntime {
        &self.nodes[rank]
    }

    /// Mutable access to a node runtime (0 = client).
    pub fn node_mut(&mut self, rank: usize) -> &mut NodeRuntime {
        &mut self.nodes[rank]
    }

    /// Process a single event.  Returns false when the queue is empty.
    fn step_event(&mut self) -> bool {
        let Some((arrival, inflight)) = self.queue.pop() else {
            return false;
        };
        let InFlight {
            msg,
            transmission,
            wire_bytes,
        } = inflight;
        let dst = msg.dst.index();
        if dst >= self.nodes.len() {
            self.dropped_misaddressed += 1;
            return true; // misaddressed message: dropped (and counted)
        }
        self.delivered += 1;
        self.nodes[dst].deliver(msg);

        // The destination CPU picks the message up when it is free.
        let start = self.node_ready_at[dst].max(arrival);
        let outcomes = self.nodes[dst].poll(usize::MAX);
        let mut finish = start;
        for outcome in outcomes {
            match outcome {
                Ok(o) => {
                    let record = self.charge(dst, arrival, finish, transmission, wire_bytes, &o);
                    finish = record.done;
                    self.timings.records.push(record);
                }
                Err(e) => self.errors.push(e),
            }
        }
        self.node_ready_at[dst] = finish;
        // Whatever the processing posted departs after processing completes.
        self.flush_node_at(dst, finish);
        true
    }

    /// Convert a processing outcome into charged virtual time.
    fn charge(
        &self,
        node: usize,
        arrival: SimTime,
        start: SimTime,
        transmission: SimDuration,
        wire_bytes: usize,
        outcome: &ProcessOutcome,
    ) -> DeliveryRecord {
        let cpu = if node == 0 {
            self.platform.client_cpu
        } else {
            self.platform.server_cpu
        };
        let (lookup, jit, binary_load) = match outcome.kind {
            OutcomeKind::AmExecuted => (cpu.am_dispatch(), SimDuration::ZERO, SimDuration::ZERO),
            OutcomeKind::IfuncExecutedCached => {
                (cpu.cached_lookup(), SimDuration::ZERO, SimDuration::ZERO)
            }
            OutcomeKind::IfuncExecutedFirstArrival => {
                let jit = outcome
                    .jit_bitcode_bytes
                    .map(|b| cpu.jit_time(b, self.opt_cost_factor))
                    .unwrap_or(SimDuration::ZERO);
                let load = if outcome.binary_loaded {
                    cpu.binary_load()
                } else {
                    SimDuration::ZERO
                };
                (cpu.uncached_lookup(), jit, load)
            }
            // Pure data-path operations: a small fixed handling cost.
            _ => (
                SimDuration::from_nanos(20),
                SimDuration::ZERO,
                SimDuration::ZERO,
            ),
        };
        let exec = cpu.exec_time(outcome.exec_cycles);
        let done = start + lookup + jit + binary_load + exec;
        DeliveryRecord {
            node: node as u32,
            arrival,
            done,
            kind: outcome.kind,
            wire_bytes,
            transmission,
            lookup,
            jit,
            binary_load,
            exec,
        }
    }

    /// Pick up everything node `rank` has posted and schedule its delivery,
    /// assuming the sends are issued "now".
    fn flush_node(&mut self, rank: usize) {
        self.flush_node_at(rank, self.queue.now());
    }

    fn flush_node_at(&mut self, rank: usize, earliest: SimTime) {
        let outgoing = self.nodes[rank].take_outgoing();
        for msg in outgoing {
            let wire_bytes = msg.op.wire_size();
            let class = match &msg.op {
                UcpOp::Get { .. } => FabricOp::Get,
                UcpOp::ActiveMessage { .. } => FabricOp::ActiveMessage,
                _ => FabricOp::Put,
            };
            let fabric = self.platform.fabric;
            let gap = fabric.injection_gap(class, wire_bytes);
            let latency = fabric.latency(class, wire_bytes);
            let depart = self.link_ready_at[rank].max(earliest);
            self.link_ready_at[rank] = depart + gap;
            let arrival = depart + latency;
            self.queue.schedule_at(
                arrival,
                InFlight {
                    msg,
                    transmission: latency,
                    wire_bytes,
                },
            );
        }
    }
}

impl Transport for SimTransport {
    fn backend_name(&self) -> &'static str {
        "simnet"
    }

    fn node_count(&self) -> usize {
        self.nodes.len()
    }

    fn client(&self) -> &NodeRuntime {
        &self.nodes[0]
    }

    fn client_mut(&mut self) -> &mut NodeRuntime {
        &mut self.nodes[0]
    }

    fn deploy_am(&mut self, name: &str, handler: NativeAmHandler) -> Result<()> {
        for node in &mut self.nodes {
            node.deploy_am_handler(name.to_string(), handler.clone());
        }
        Ok(())
    }

    fn flush_client(&mut self) -> Result<()> {
        self.flush_node(0);
        Ok(())
    }

    fn step(&mut self) -> Result<bool> {
        Ok(self.step_event())
    }

    fn take_completions(&mut self) -> Vec<Completion> {
        self.nodes[0].take_completions()
    }

    fn read_memory(&mut self, rank: usize, addr: u64, len: usize) -> Result<Vec<u8>> {
        let node = self
            .nodes
            .get_mut(rank)
            .ok_or_else(|| CoreError::Sim(format!("no node with rank {rank}")))?;
        let mut buf = vec![0u8; len];
        node.memory
            .read(addr, &mut buf)
            .map_err(|e| CoreError::Sim(e.to_string()))?;
        Ok(buf)
    }

    fn write_memory(&mut self, rank: usize, addr: u64, data: &[u8]) -> Result<()> {
        let node = self
            .nodes
            .get_mut(rank)
            .ok_or_else(|| CoreError::Sim(format!("no node with rank {rank}")))?;
        node.memory
            .write(addr, data)
            .map_err(|e| CoreError::Sim(e.to_string()))
    }

    fn node_stats(&mut self, rank: usize) -> Result<RuntimeStats> {
        self.nodes
            .get(rank)
            .map(|n| n.stats)
            .ok_or_else(|| CoreError::Sim(format!("no node with rank {rank}")))
    }

    fn metrics(&self) -> TransportMetrics {
        TransportMetrics {
            messages_delivered: self.delivered,
            messages_dropped: self.dropped_misaddressed,
            bytes_sent: self.nodes[0].stats.bytes_sent,
        }
    }
}
