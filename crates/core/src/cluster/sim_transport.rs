//! The discrete-event backend: all node runtimes live in-process and every
//! fabric operation travels through a virtual-time event queue over the
//! calibrated `tc-simnet` fabric and CPU models.
//!
//! This is the engine behind every table and figure reproduction:
//!
//! * each operation leaves its sender no earlier than the sender's
//!   *injection gap* allows (this is what bounds message rate);
//! * it arrives after the fabric *latency* for its size and class;
//! * handling it on the destination costs virtual CPU time: AM dispatch,
//!   cached-ifunc lookup, JIT compilation (first arrival), binary load, and
//!   the interpreter's cycle count converted at the node's clock;
//! * anything the handled message itself posted (recursive forwards, result
//!   returns, GET replies) departs after that processing completes.
//!
//! Every delivery is appended to a [`TimingLog`] so the benchmark harness can
//! reconstruct the paper's overhead breakdown (transmission / lookup / JIT /
//! execution) without re-instrumenting the runtime.

use super::reliable::{LinkHealth, RelConfig, RelMetrics, ReliableSet};
use super::{ClientId, ClientRef, ClientRefMut, Transport, TransportMetrics};
use crate::error::{CoreError, Result};
use crate::metrics::{OutcomeKind, ProcessOutcome, RuntimeStats};
use crate::runtime::{Completion, NativeAmHandler, NodeRuntime};
use crate::sim::{DeliveryRecord, TimingLog};
use std::collections::HashMap;
use tc_bitir::TargetTriple;
use tc_chaos::{ChaosSession, ChaosStats, FaultPlan};
use tc_jit::{Memory, OptLevel};
use tc_simnet::{EventQueue, FabricOp, Platform, SimDuration, SimTime};
use tc_ucx::{OutgoingMessage, UcpOp};

#[derive(Debug)]
enum InFlight {
    /// A fabric message (data plane).  `rel` carries the reliability header
    /// when a fault plan is installed.
    Frame {
        msg: OutgoingMessage,
        rel: Option<(u64, u64)>,
        transmission: SimDuration,
        wire_bytes: usize,
    },
    /// A pure cumulative ack of the reliability layer (chaos mode only).
    Ack { src: usize, dst: usize, ack: u64 },
    /// Periodic retransmission-timer sweep (chaos mode only).
    RetxTick,
}

/// Chaos-mode state of the simulated backend: the shared fault-decision
/// session plus one reliability state machine per node, driven in virtual
/// time.
struct SimChaos {
    session: ChaosSession,
    rel: Vec<ReliableSet<OutgoingMessage>>,
    /// True while a [`InFlight::RetxTick`] is in the queue.
    tick_scheduled: bool,
}

/// Virtual-time cadence of the retransmission-timer sweep.
const RETX_TICK: SimDuration = SimDuration(50_000); // 50 µs
/// Wire size charged for a pure ack frame.
const ACK_WIRE_BYTES: usize = 24;

/// The discrete-event cluster backend (virtual time, calibrated models).
pub struct SimTransport {
    platform: Platform,
    /// Ranks `0..clients` are client runtimes, the rest servers.
    clients: usize,
    nodes: Vec<NodeRuntime>,
    queue: EventQueue<InFlight>,
    /// Earliest time each node's CPU is free to process the next arrival.
    node_ready_at: Vec<SimTime>,
    /// Earliest time each node's fabric injection port is free.
    link_ready_at: Vec<SimTime>,
    /// Latest scheduled arrival per directed link.  RDMA RC links deliver
    /// in posting order, and the truncation protocol *depends* on that: a
    /// tiny code-elided frame must never overtake the full frame that ships
    /// the code.  Size-dependent latency alone would let it (small frames
    /// are faster), so arrivals are clamped to each link's FIFO order.
    link_last_arrival: HashMap<(usize, usize), SimTime>,
    timings: TimingLog,
    opt_cost_factor: f64,
    errors: Vec<CoreError>,
    delivered: u64,
    dropped_misaddressed: u64,
    chaos: Option<SimChaos>,
}

impl std::fmt::Debug for SimTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimTransport")
            .field("platform", &self.platform.name)
            .field("nodes", &self.nodes.len())
            .field("now", &self.queue.now())
            .field("pending_events", &self.queue.len())
            .finish()
    }
}

impl SimTransport {
    /// Create a backend with one client (rank 0) and `servers` server nodes
    /// (ranks 1..=servers) on the given platform.
    pub fn new(platform: Platform, servers: usize) -> Self {
        Self::with_triples_and_opt(platform, servers, None, None, OptLevel::O2)
    }

    /// Full-control constructor used by the cluster builder: override the
    /// node target triples (defaulting to the platform's) and the JIT
    /// optimisation level used for cost accounting and compilation.
    pub fn with_triples_and_opt(
        platform: Platform,
        servers: usize,
        client_triple: Option<TargetTriple>,
        server_triple: Option<TargetTriple>,
        opt_level: OptLevel,
    ) -> Self {
        Self::with_config(
            platform,
            1,
            servers,
            client_triple,
            server_triple,
            opt_level,
            None,
            None,
        )
    }

    /// Constructor with `clients` driver runtimes (ranks `0..clients`),
    /// `servers` server runtimes (ranks `clients..clients+servers`) and an
    /// optional fault plan: when present, every fabric traversal consults
    /// the chaos engine (drop / duplicate / delay / reorder, partitions,
    /// crash windows) and the data plane runs over the reliable-delivery
    /// layer in virtual time.  Client injection interleaves
    /// deterministically: each client owns its own injection port
    /// (per-rank `link_ready_at`) and flushed sends meet in the one virtual
    /// time event queue.
    #[allow(clippy::too_many_arguments)]
    pub fn with_config(
        platform: Platform,
        clients: usize,
        servers: usize,
        client_triple: Option<TargetTriple>,
        server_triple: Option<TargetTriple>,
        opt_level: OptLevel,
        fault_plan: Option<FaultPlan>,
        rel_config: Option<RelConfig>,
    ) -> Self {
        let clients = clients.max(1);
        let total = servers + clients;
        let client_triple = client_triple.unwrap_or_else(|| {
            TargetTriple::parse(platform.client_triple).unwrap_or(TargetTriple::X86_64_GENERIC)
        });
        let server_triple = server_triple.unwrap_or_else(|| {
            TargetTriple::parse(platform.server_triple).unwrap_or(TargetTriple::AARCH64_GENERIC)
        });
        let nodes = (0..total)
            .map(|i| {
                let triple = if i < clients {
                    client_triple
                } else {
                    server_triple
                };
                NodeRuntime::with_opt_level(
                    tc_ucx::WorkerAddr(i as u32),
                    total as u32,
                    triple,
                    opt_level,
                )
            })
            .collect();
        SimTransport {
            platform,
            clients,
            nodes,
            queue: EventQueue::new(),
            node_ready_at: vec![SimTime::ZERO; total],
            link_ready_at: vec![SimTime::ZERO; total],
            link_last_arrival: HashMap::new(),
            timings: TimingLog::default(),
            opt_cost_factor: opt_level.compile_cost_factor(),
            errors: Vec::new(),
            delivered: 0,
            dropped_misaddressed: 0,
            chaos: fault_plan.map(|plan| {
                let rel_cfg = rel_config.unwrap_or_else(RelConfig::sim_default);
                SimChaos {
                    session: ChaosSession::new(plan),
                    rel: (0..total).map(|_| ReliableSet::new(rel_cfg)).collect(),
                    tick_scheduled: false,
                }
            }),
        }
    }

    /// Snapshot of the injected-fault counters (chaos mode only).
    pub fn chaos_stats(&self) -> Option<ChaosStats> {
        self.chaos.as_ref().map(|c| c.session.stats())
    }

    /// Reliability counters of one node (chaos mode only).
    pub fn rel_metrics(&self, rank: usize) -> Option<RelMetrics> {
        self.chaos
            .as_ref()
            .and_then(|c| c.rel.get(rank))
            .map(|r| r.metrics)
    }

    /// The platform this backend models.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Timing log of every processed delivery.
    pub fn timings(&self) -> &TimingLog {
        &self.timings
    }

    /// Errors collected from node runtimes during event processing.
    pub fn errors(&self) -> &[CoreError] {
        &self.errors
    }

    /// Access a node runtime (0 = client).
    pub fn node(&self, rank: usize) -> &NodeRuntime {
        &self.nodes[rank]
    }

    /// Mutable access to a node runtime (0 = client).
    pub fn node_mut(&mut self, rank: usize) -> &mut NodeRuntime {
        &mut self.nodes[rank]
    }

    /// Process a single event.  Returns false when the queue is empty.
    fn step_event(&mut self) -> bool {
        let popped = self.queue.pop().or_else(|| {
            // Self-heal: an empty queue while reliability state is
            // outstanding must not read as quiescence — re-arm the
            // retransmission timer so virtual time keeps moving until the
            // unacked frames resolve.
            self.ensure_retx_tick();
            self.queue.pop()
        });
        let Some((arrival, inflight)) = popped else {
            return false;
        };
        match inflight {
            InFlight::Frame {
                msg,
                rel,
                transmission,
                wire_bytes,
            } => self.handle_frame(arrival, msg, rel, transmission, wire_bytes),
            InFlight::Ack { src, dst, ack } => {
                if let Some(chaos) = &mut self.chaos {
                    if let Some(rel) = chaos.rel.get_mut(dst) {
                        rel.on_ack(src as u32, ack, arrival.as_nanos());
                    }
                }
            }
            InFlight::RetxTick => self.handle_retx_tick(arrival),
        }
        true
    }

    /// Handle an arriving fabric frame: run it through the destination's
    /// reliability state (chaos mode), then deliver whatever came out in
    /// order.
    fn handle_frame(
        &mut self,
        arrival: SimTime,
        msg: OutgoingMessage,
        rel: Option<(u64, u64)>,
        transmission: SimDuration,
        wire_bytes: usize,
    ) {
        let dst = msg.dst.index();
        if dst >= self.nodes.len() {
            self.dropped_misaddressed += 1;
            return; // misaddressed message: dropped (and counted)
        }
        let deliverable = match (rel, &mut self.chaos) {
            (Some((seq, ack)), Some(chaos)) => {
                let src = msg.src.index();
                let out = chaos.rel[dst].on_data(src as u32, seq, ack, msg, arrival.as_nanos());
                // The cumulative ack travels back over the (faulty) fabric.
                self.schedule_ack(dst, src, out.ack);
                out.deliver
            }
            _ => vec![msg],
        };
        for m in deliverable {
            self.deliver_and_charge(arrival, m, transmission, wire_bytes);
        }
    }

    /// Deliver one message to its destination runtime and charge virtual
    /// time for the processing it caused.
    fn deliver_and_charge(
        &mut self,
        arrival: SimTime,
        msg: OutgoingMessage,
        transmission: SimDuration,
        wire_bytes: usize,
    ) {
        let dst = msg.dst.index();
        self.delivered += 1;
        self.nodes[dst].deliver(msg);

        // The destination CPU picks the message up when it is free.
        let start = self.node_ready_at[dst].max(arrival);
        let outcomes = self.nodes[dst].poll(usize::MAX);
        let mut finish = start;
        for outcome in outcomes {
            match outcome {
                Ok(o) => {
                    let record = self.charge(dst, arrival, finish, transmission, wire_bytes, &o);
                    finish = record.done;
                    self.timings.records.push(record);
                }
                Err(e) => self.errors.push(e),
            }
        }
        self.node_ready_at[dst] = finish;
        // Whatever the processing posted departs after processing completes.
        self.flush_node_at(dst, finish);
    }

    /// Send a pure cumulative ack `from → to` through the chaos engine.
    fn schedule_ack(&mut self, from: usize, to: usize, ack: u64) {
        let Some(chaos) = &mut self.chaos else {
            return;
        };
        let decision = chaos.session.decide(from, to);
        if !decision.deliver {
            return; // a lost ack: the peer retransmits, the dup is dropped
        }
        let latency = self.platform.fabric.latency(FabricOp::Put, ACK_WIRE_BYTES);
        let extra = SimDuration(
            latency
                .as_nanos()
                .saturating_mul(decision.delay_units as u64 + decision.reorder as u64),
        );
        let copies = 1 + decision.duplicate as u32;
        for _ in 0..copies {
            self.queue.schedule_after(
                latency + extra,
                InFlight::Ack {
                    src: from,
                    dst: to,
                    ack,
                },
            );
        }
    }

    /// Retransmission-timer sweep: re-send every expired unacked frame
    /// (through the chaos engine — retransmits can be dropped too) and
    /// re-arm the timer while anything is outstanding.
    fn handle_retx_tick(&mut self, now: SimTime) {
        let now_ns = now.as_nanos();
        let mut to_send = Vec::new();
        {
            let Some(chaos) = &mut self.chaos else {
                return;
            };
            chaos.tick_scheduled = false;
            for (rank, rel) in chaos.rel.iter_mut().enumerate() {
                for f in rel.tick(now_ns) {
                    to_send.push((rank, f));
                }
            }
        }
        for (rank, f) in to_send {
            self.schedule_frame(rank, f.m, Some((f.seq, f.ack)), false, now);
        }
        self.ensure_retx_tick();
    }

    /// Arm the retransmission timer if any frame is outstanding and no tick
    /// is already queued.
    fn ensure_retx_tick(&mut self) {
        let need = match &self.chaos {
            Some(c) => !c.tick_scheduled && c.rel.iter().any(|r| r.unacked_total() > 0),
            None => false,
        };
        if need {
            if let Some(c) = &mut self.chaos {
                c.tick_scheduled = true;
            }
            self.queue.schedule_after(RETX_TICK, InFlight::RetxTick);
        }
    }

    /// Schedule one frame onto the fabric: fabric timing (injection gap for
    /// first sends, latency always) plus, in chaos mode, the fault decision
    /// for this traversal (drop / duplicate / delay / reorder).
    fn schedule_frame(
        &mut self,
        rank: usize,
        msg: OutgoingMessage,
        rel: Option<(u64, u64)>,
        use_gap: bool,
        earliest: SimTime,
    ) {
        let wire_bytes = msg.op.wire_size() + if rel.is_some() { 16 } else { 0 };
        let class = match &msg.op {
            UcpOp::Get { .. } => FabricOp::Get,
            UcpOp::ActiveMessage { .. } => FabricOp::ActiveMessage,
            _ => FabricOp::Put,
        };
        let fabric = self.platform.fabric;
        let latency = fabric.latency(class, wire_bytes);
        let depart = if use_gap {
            let gap = fabric.injection_gap(class, wire_bytes);
            let depart = self.link_ready_at[rank].max(earliest);
            self.link_ready_at[rank] = depart + gap;
            depart
        } else {
            earliest
        };
        // Per-link FIFO: this frame's base arrival never precedes an
        // earlier frame's arrival on the same directed link (equal-time
        // events pop in schedule order, preserving posting order).  Chaos
        // delay/reorder offsets are added *after* the clamp — they model
        // deliberate reordering the reliable layer recovers from.
        let link = (rank, msg.dst.index());
        let fifo_arrival = {
            let base = depart + latency;
            let clamped = self
                .link_last_arrival
                .get(&link)
                .map(|&last| base.max(last))
                .unwrap_or(base);
            self.link_last_arrival.insert(link, clamped);
            clamped
        };
        if rel.is_some() {
            let decision = match &mut self.chaos {
                Some(chaos) => chaos.session.decide(rank, msg.dst.index()),
                None => tc_chaos::Decision::CLEAN,
            };
            if !decision.deliver {
                return; // dropped by the plan; the retransmit timer recovers
            }
            let extra = SimDuration(
                latency
                    .as_nanos()
                    .saturating_mul(decision.delay_units as u64 + decision.reorder as u64),
            );
            let copies = 1 + decision.duplicate as u32;
            for _ in 0..copies {
                self.queue.schedule_at(
                    fifo_arrival + extra,
                    InFlight::Frame {
                        msg: msg.clone(),
                        rel,
                        transmission: latency,
                        wire_bytes,
                    },
                );
            }
            return;
        }
        self.queue.schedule_at(
            fifo_arrival,
            InFlight::Frame {
                msg,
                rel,
                transmission: latency,
                wire_bytes,
            },
        );
    }

    /// Convert a processing outcome into charged virtual time.
    fn charge(
        &self,
        node: usize,
        arrival: SimTime,
        start: SimTime,
        transmission: SimDuration,
        wire_bytes: usize,
        outcome: &ProcessOutcome,
    ) -> DeliveryRecord {
        let cpu = if node < self.clients {
            self.platform.client_cpu
        } else {
            self.platform.server_cpu
        };
        let (lookup, jit, binary_load) = match outcome.kind {
            OutcomeKind::AmExecuted => (cpu.am_dispatch(), SimDuration::ZERO, SimDuration::ZERO),
            OutcomeKind::IfuncExecutedCached => {
                (cpu.cached_lookup(), SimDuration::ZERO, SimDuration::ZERO)
            }
            OutcomeKind::IfuncExecutedFirstArrival => {
                let jit = outcome
                    .jit_bitcode_bytes
                    .map(|b| cpu.jit_time(b, self.opt_cost_factor))
                    .unwrap_or(SimDuration::ZERO);
                let load = if outcome.binary_loaded {
                    cpu.binary_load()
                } else {
                    SimDuration::ZERO
                };
                (cpu.uncached_lookup(), jit, load)
            }
            // Pure data-path operations: a small fixed handling cost.
            _ => (
                SimDuration::from_nanos(20),
                SimDuration::ZERO,
                SimDuration::ZERO,
            ),
        };
        let exec = cpu.exec_time(outcome.exec_cycles);
        let done = start + lookup + jit + binary_load + exec;
        DeliveryRecord {
            node: node as u32,
            arrival,
            done,
            kind: outcome.kind,
            wire_bytes,
            transmission,
            lookup,
            jit,
            binary_load,
            exec,
        }
    }

    /// Pick up everything node `rank` has posted and schedule its delivery,
    /// assuming the sends are issued "now".
    fn flush_node(&mut self, rank: usize) {
        self.flush_node_at(rank, self.queue.now());
    }

    fn flush_node_at(&mut self, rank: usize, earliest: SimTime) {
        let outgoing = self.nodes[rank].take_outgoing();
        let now_ns = self.queue.now().as_nanos();
        for msg in outgoing {
            let dst = msg.dst.index();
            // Chaos mode: register the message with the sender's
            // reliability state (assigning its sequence number) unless it
            // bypasses the fabric model the fault plan describes: loopback,
            // misaddressed, or client-to-client.  Client↔client traffic is
            // loopback-class — all clients live on the driving side, and
            // the threaded backend delivers it driver-locally without
            // touching the fabric, so the fault model must exempt it here
            // too or the backends' chaos schedules diverge.
            let client_to_client = rank < self.clients && dst < self.clients;
            let rel = match &mut self.chaos {
                Some(chaos) if dst < self.nodes.len() && dst != rank && !client_to_client => {
                    Some(chaos.rel[rank].send(dst as u32, msg.clone(), now_ns))
                }
                _ => None,
            };
            self.schedule_frame(rank, msg, rel, true, earliest);
        }
        self.ensure_retx_tick();
    }
}

impl Transport for SimTransport {
    fn backend_name(&self) -> &'static str {
        "simnet"
    }

    fn link_health(&self) -> Vec<(u32, LinkHealth)> {
        let Some(chaos) = &self.chaos else {
            return Vec::new();
        };
        let mut rows = Vec::new();
        for (rank, rel) in chaos.rel.iter().enumerate() {
            for h in rel.link_health() {
                rows.push((rank as u32, h));
            }
        }
        rows
    }

    fn node_count(&self) -> usize {
        self.nodes.len()
    }

    fn client_count(&self) -> usize {
        self.clients
    }

    fn client(&self, id: ClientId) -> ClientRef<'_> {
        assert!(id.0 < self.clients, "no client with id {id}");
        ClientRef::Direct(&self.nodes[id.0])
    }

    fn client_mut(&mut self, id: ClientId) -> ClientRefMut<'_> {
        assert!(id.0 < self.clients, "no client with id {id}");
        ClientRefMut::Direct(&mut self.nodes[id.0])
    }

    fn deploy_am(&mut self, name: &str, handler: NativeAmHandler) -> Result<()> {
        for node in &mut self.nodes {
            node.deploy_am_handler(name.to_string(), handler.clone());
        }
        Ok(())
    }

    fn flush_client(&mut self, id: ClientId) -> Result<()> {
        if id.0 >= self.clients {
            return Err(CoreError::Sim(format!("no client with id {id}")));
        }
        self.flush_node(id.0);
        Ok(())
    }

    fn step(&mut self) -> Result<bool> {
        Ok(self.step_event())
    }

    fn take_completions(&mut self, id: ClientId) -> Vec<Completion> {
        assert!(id.0 < self.clients, "no client with id {id}");
        self.nodes[id.0].take_completions()
    }

    fn now_nanos(&self) -> u64 {
        self.queue.now().as_nanos()
    }

    fn unacked_total(&self) -> u64 {
        self.chaos
            .as_ref()
            .map(|c| c.rel.iter().map(|r| r.unacked_total()).sum())
            .unwrap_or(0)
    }

    fn next_rel_deadline(&self) -> Option<u64> {
        self.chaos
            .as_ref()
            .and_then(|c| c.rel.iter().filter_map(|r| r.next_deadline()).min())
    }

    fn read_memory(&mut self, rank: usize, addr: u64, len: usize) -> Result<Vec<u8>> {
        let node = self
            .nodes
            .get_mut(rank)
            .ok_or_else(|| CoreError::Sim(format!("no node with rank {rank}")))?;
        let mut buf = vec![0u8; len];
        node.memory
            .read(addr, &mut buf)
            .map_err(|e| CoreError::Sim(e.to_string()))?;
        Ok(buf)
    }

    fn write_memory(&mut self, rank: usize, addr: u64, data: &[u8]) -> Result<()> {
        let node = self
            .nodes
            .get_mut(rank)
            .ok_or_else(|| CoreError::Sim(format!("no node with rank {rank}")))?;
        node.memory
            .write(addr, data)
            .map_err(|e| CoreError::Sim(e.to_string()))
    }

    fn node_stats(&mut self, rank: usize) -> Result<RuntimeStats> {
        self.nodes
            .get(rank)
            .map(|n| n.stats)
            .ok_or_else(|| CoreError::Sim(format!("no node with rank {rank}")))
    }

    fn metrics(&self) -> TransportMetrics {
        let (retransmits, dup_drops) = self
            .chaos
            .as_ref()
            .map(|c| {
                c.rel.iter().fold((0, 0), |(r, d), set| {
                    (r + set.metrics.retransmits, d + set.metrics.dup_drops)
                })
            })
            .unwrap_or((0, 0));
        TransportMetrics {
            messages_delivered: self.delivered,
            messages_dropped: self.dropped_misaddressed,
            bytes_sent: self.nodes[..self.clients]
                .iter()
                .map(|n| n.stats.bytes_sent)
                .sum(),
            retransmits,
            dup_drops,
            faults_injected: self
                .chaos
                .as_ref()
                .map(|c| c.session.stats().total_injected())
                .unwrap_or(0),
        }
    }

    fn node_reliability(&self, rank: usize) -> Option<RelMetrics> {
        self.rel_metrics(rank)
    }

    fn chaos_stats(&self) -> Option<ChaosStats> {
        SimTransport::chaos_stats(self)
    }
}
