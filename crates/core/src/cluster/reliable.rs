//! The reliable-delivery sublayer: exactly-once, in-order links over a
//! lossy fabric.
//!
//! The paper's transports assume a lossless RDMA fabric; under a
//! [`tc_chaos::FaultPlan`] that assumption is gone — envelopes drop,
//! duplicate and reorder.  This module implements the classic fix at the
//! framework level, once, for both backends:
//!
//! * **per-link sequence numbers** — every data message on a directed link
//!   carries a monotonically increasing sequence number;
//! * **cumulative acks** — receivers acknowledge the highest in-order
//!   sequence delivered, piggybacked on data and echoed as pure acks;
//! * **timeout-based retransmission with bounded backoff** — unacked
//!   messages are re-sent after an RTO that doubles per silent round up to
//!   a cap (the retries themselves are unbounded: a partition heals
//!   *because* retransmissions keep probing it);
//! * **adaptive per-link RTO** — the base timeout is estimated per link
//!   from ack round-trip samples (Jacobson's SRTT/RTTVAR with Karn's rule:
//!   retransmitted frames never feed the estimator), clamped to
//!   `[cfg.rto, cfg.rto_max]`; fixed-RTO operation remains available as
//!   the comparison arm ([`RelConfig::adaptive`] = false);
//! * **receiver-side dedup and reordering** — duplicates are dropped,
//!   out-of-order arrivals are buffered until the gap fills.
//!
//! The state machine is transport-agnostic: it never touches clocks,
//! channels or event queues.  Callers feed it their own notion of "now" in
//! nanoseconds — virtual time for [`super::SimTransport`], wall-clock time
//! for [`super::ThreadTransport`] — and transmit whatever frames it hands
//! back.  `M` is the caller's message representation (a decoded
//! [`tc_ucx::OutgoingMessage`] in the simulator, an encoded envelope pair in
//! the threaded backend).

use std::collections::BTreeMap;

/// Reliability tunables.  Times are in nanoseconds of the caller's clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RelConfig {
    /// Initial retransmission timeout; when [`RelConfig::adaptive`] is set
    /// it is also the floor the estimated RTO never drops below.
    pub rto: u64,
    /// Backoff cap: the RTO doubles each silent round but never exceeds
    /// this.  Also the ceiling of the adaptive estimate.
    pub rto_max: u64,
    /// Estimate the per-link RTO from ack RTT samples (Jacobson SRTT/RTTVAR
    /// with Karn's rule).  When false the RTO stays pinned at `rto`.
    pub adaptive: bool,
}

impl RelConfig {
    /// Defaults for the discrete-event backend (virtual microseconds).
    pub fn sim_default() -> Self {
        RelConfig {
            rto: 100_000,       // 100 µs
            rto_max: 2_000_000, // 2 ms
            adaptive: true,
        }
    }

    /// Defaults for the threaded backend (wall-clock milliseconds).
    pub fn threads_default() -> Self {
        RelConfig {
            rto: 30_000_000,      // 30 ms
            rto_max: 480_000_000, // 480 ms
            adaptive: true,
        }
    }

    /// The same tunables with the estimator disabled (the fixed-RTO
    /// comparison arm of the reliability-cost benches).
    pub fn fixed(self) -> Self {
        RelConfig {
            adaptive: false,
            ..self
        }
    }
}

/// Cumulative reliability counters of one node.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RelMetrics {
    /// Messages re-sent after an RTO expiry.
    pub retransmits: u64,
    /// Duplicate arrivals dropped by the receiver.
    pub dup_drops: u64,
    /// Out-of-order arrivals parked until their gap filled.
    pub out_of_order: u64,
    /// Pure acks emitted.
    pub acks_sent: u64,
}

/// Operator-facing snapshot of one link's reliability state
/// ([`ReliableSet::link_health`]); `srtt`/`rttvar` are zero until the first
/// RTT sample arrives, at which point `rto` starts tracking the estimate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkHealth {
    /// Peer rank of the link.
    pub peer: u32,
    /// Smoothed round-trip time (ns); 0 before the first sample.
    pub srtt: u64,
    /// Round-trip time variance (ns); 0 before the first sample.
    pub rttvar: u64,
    /// Current base retransmission timeout of the link (ns).
    pub rto: u64,
    /// Messages awaiting acknowledgement on the link.
    pub unacked: u64,
    /// Consecutive silent RTO rounds (the backoff exponent; resets on ack
    /// progress).
    pub silent_rounds: u32,
}

/// One buffered-for-retransmission message with the state the RTT estimator
/// needs: when its *first* transmission left, and whether it has been
/// retransmitted since (Karn's rule disqualifies it from sampling then —
/// an ack for a retransmitted frame is ambiguous about which copy it
/// acknowledges).
#[derive(Debug, Clone)]
struct SentEntry<M> {
    m: M,
    sent_at: u64,
    retransmitted: bool,
}

/// A frame the caller must (re)transmit: message `m` to `peer` with
/// reliability header `(seq, ack)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelFrame<M> {
    /// Destination peer rank.
    pub peer: u32,
    /// The frame's sequence number on the `(local, peer)` link.
    pub seq: u64,
    /// Cumulative ack to piggyback (highest in-order seq received *from*
    /// `peer`).
    pub ack: u64,
    /// The message payload.
    pub m: M,
}

/// What [`ReliableSet::on_data`] decided about one arrival.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataOutcome<M> {
    /// Messages now deliverable in order (possibly several, when this
    /// arrival filled a gap; empty for duplicates and parked arrivals).
    pub deliver: Vec<M>,
    /// Cumulative ack to send back to the peer (always returned — the
    /// sender needs it even, especially, for duplicates).
    pub ack: u64,
    /// True when the arrival was a duplicate and was dropped.
    pub dup: bool,
}

#[derive(Debug)]
struct PeerLink<M> {
    /// Next sequence number to assign (first message is 1).
    next_seq: u64,
    /// Sent but not yet cumulatively acked, keyed by seq.
    unacked: BTreeMap<u64, SentEntry<M>>,
    /// Consecutive silent RTO rounds (resets on ack progress).
    backoff: u32,
    /// Caller-clock deadline of the next retransmission round.
    next_retx_at: u64,
    /// Highest in-order sequence received from the peer.
    recv_cum: u64,
    /// Out-of-order arrivals parked until the gap fills.
    parked: BTreeMap<u64, M>,
    /// Smoothed RTT estimate (ns); meaningless until `has_sample`.
    srtt: u64,
    /// RTT variance estimate (ns); meaningless until `has_sample`.
    rttvar: u64,
    /// Current base RTO: `cfg.rto` until the estimator has a sample, then
    /// `clamp(srtt + 4·rttvar, cfg.rto, cfg.rto_max)`.
    cur_rto: u64,
    /// True once the estimator has consumed its first RTT sample.
    has_sample: bool,
}

impl<M> PeerLink<M> {
    fn new(initial_rto: u64) -> Self {
        PeerLink {
            next_seq: 1,
            unacked: BTreeMap::new(),
            backoff: 0,
            next_retx_at: u64::MAX,
            recv_cum: 0,
            parked: BTreeMap::new(),
            srtt: 0,
            rttvar: 0,
            cur_rto: initial_rto,
            has_sample: false,
        }
    }

    /// Feed one RTT sample through Jacobson's estimator and refresh the
    /// link RTO.  Integer arithmetic, RFC 6298 gains: first sample sets
    /// `srtt = R`, `rttvar = R/2`; afterwards
    /// `rttvar = 3/4·rttvar + 1/4·|srtt − R|`, `srtt = 7/8·srtt + 1/8·R`.
    fn sample_rtt(&mut self, r: u64, cfg: &RelConfig) {
        if self.has_sample {
            self.rttvar = (3 * self.rttvar) / 4 + self.srtt.abs_diff(r) / 4;
            self.srtt = (7 * self.srtt) / 8 + r / 8;
        } else {
            self.srtt = r;
            self.rttvar = r / 2;
            self.has_sample = true;
        }
        self.cur_rto = self
            .srtt
            .saturating_add(4u64.saturating_mul(self.rttvar))
            .clamp(cfg.rto, cfg.rto_max);
    }
}

/// One node's reliability state across all of its links.
#[derive(Debug)]
pub struct ReliableSet<M> {
    cfg: RelConfig,
    /// Keyed by peer rank.  A BTreeMap so [`ReliableSet::tick`] visits
    /// links in rank order — the retransmission path feeds the chaos
    /// engine, whose crash windows count *global* traffic, so iteration
    /// order is part of the same-seed-same-faults contract.
    peers: BTreeMap<u32, PeerLink<M>>,
    /// Cumulative counters (public: transports export them).
    pub metrics: RelMetrics,
}

impl<M: Clone> ReliableSet<M> {
    /// Fresh state under the given tunables.
    pub fn new(cfg: RelConfig) -> Self {
        ReliableSet {
            cfg,
            peers: BTreeMap::new(),
            metrics: RelMetrics::default(),
        }
    }

    fn link(&mut self, peer: u32) -> &mut PeerLink<M> {
        let initial_rto = self.cfg.rto;
        self.peers
            .entry(peer)
            .or_insert_with(|| PeerLink::new(initial_rto))
    }

    /// Register an outgoing message on the `(local, peer)` link: assigns its
    /// sequence number, buffers it for retransmission and arms the RTO.
    /// Returns the reliability header `(seq, ack)` to attach.
    pub fn send(&mut self, peer: u32, m: M, now: u64) -> (u64, u64) {
        let link = self.link(peer);
        let seq = link.next_seq;
        link.next_seq += 1;
        link.unacked.insert(
            seq,
            SentEntry {
                m,
                sent_at: now,
                retransmitted: false,
            },
        );
        if link.next_retx_at == u64::MAX {
            link.next_retx_at = now.saturating_add(link.cur_rto);
        }
        (seq, link.recv_cum)
    }

    /// Process an arriving data frame from `peer` carrying `(seq, ack)`.
    pub fn on_data(&mut self, peer: u32, seq: u64, ack: u64, m: M, now: u64) -> DataOutcome<M> {
        self.on_ack(peer, ack, now);
        let link = self.link(peer);
        if seq <= link.recv_cum || link.parked.contains_key(&seq) {
            self.metrics.dup_drops += 1;
            let ack = self.link(peer).recv_cum;
            self.metrics.acks_sent += 1;
            return DataOutcome {
                deliver: Vec::new(),
                ack,
                dup: true,
            };
        }
        let mut deliver = Vec::new();
        let mut parked = false;
        if seq == link.recv_cum + 1 {
            link.recv_cum = seq;
            deliver.push(m);
            while let Some(next) = link.parked.remove(&(link.recv_cum + 1)) {
                link.recv_cum += 1;
                deliver.push(next);
            }
        } else {
            link.parked.insert(seq, m);
            parked = true;
        }
        let ack = link.recv_cum;
        if parked {
            self.metrics.out_of_order += 1;
        }
        self.metrics.acks_sent += 1;
        DataOutcome {
            deliver,
            ack,
            dup: false,
        }
    }

    /// Process a cumulative ack from `peer`: everything at or below `ack`
    /// leaves the retransmission buffer.  Progress resets the backoff *and*
    /// re-arms the RTO from `now` — the link is demonstrably live, so any
    /// surviving gap should be probed at the base timeout instead of
    /// waiting out a stale backed-off deadline.
    ///
    /// When [`RelConfig::adaptive`] is set, the newest newly-acked frame
    /// that was never retransmitted (Karn's rule) contributes one RTT
    /// sample to the link's Jacobson estimator.
    pub fn on_ack(&mut self, peer: u32, ack: u64, now: u64) {
        let cfg = self.cfg;
        let link = self.link(peer);
        let before = link.unacked.len();
        if cfg.adaptive {
            // Sample from the most recently sent eligible frame this ack
            // covers: the freshest measurement of the link as it is now.
            let sample = link
                .unacked
                .range(..=ack)
                .rev()
                .find(|(_, e)| !e.retransmitted)
                .map(|(_, e)| now.saturating_sub(e.sent_at));
            if let Some(r) = sample {
                link.sample_rtt(r, &cfg);
            }
        }
        link.unacked.retain(|&seq, _| seq > ack);
        if link.unacked.is_empty() {
            link.next_retx_at = u64::MAX;
            link.backoff = 0;
        } else if link.unacked.len() < before {
            link.backoff = 0;
            link.next_retx_at = now.saturating_add(link.cur_rto);
        }
    }

    /// Retransmission timer: returns every frame whose link's RTO expired
    /// (all unacked messages of that link, oldest first, with a fresh
    /// cumulative ack), doubling that link's RTO up to the cap.  Every
    /// re-emitted frame is marked retransmitted so Karn's rule keeps it out
    /// of the RTT estimator for good.
    pub fn tick(&mut self, now: u64) -> Vec<RelFrame<M>> {
        let mut out = Vec::new();
        let rto_max = self.cfg.rto_max;
        let mut retx = 0u64;
        for (&peer, link) in self.peers.iter_mut() {
            if link.unacked.is_empty() || now < link.next_retx_at {
                continue;
            }
            for (&seq, entry) in link.unacked.iter_mut() {
                entry.retransmitted = true;
                out.push(RelFrame {
                    peer,
                    seq,
                    ack: link.recv_cum,
                    m: entry.m.clone(),
                });
                retx += 1;
            }
            link.backoff = link.backoff.saturating_add(1);
            let delay = link
                .cur_rto
                .saturating_mul(1u64 << link.backoff.min(24))
                .min(rto_max);
            link.next_retx_at = now.saturating_add(delay);
        }
        self.metrics.retransmits += retx;
        out
    }

    /// Force every link's RTO to expire at the next [`ReliableSet::tick`],
    /// regardless of its backed-off deadline.  Crash recovery uses this to
    /// replay the retained unacked frames immediately after a peer rejoins
    /// instead of waiting out a (possibly capped) silent-round delay.
    pub fn expire_now(&mut self) {
        for link in self.peers.values_mut() {
            if !link.unacked.is_empty() {
                link.next_retx_at = 0;
                link.backoff = 0;
            }
        }
    }

    /// Tear down the link to `peer` as if it had never carried traffic,
    /// returning the unacked messages oldest-first so the caller can
    /// re-register them with [`ReliableSet::send`].
    ///
    /// This is the crash-recovery primitive: a respawned peer starts a
    /// *fresh* sequence space (its receiver expects seq 1, its sender emits
    /// seq 1), so the surviving side must renumber its retained frames and
    /// reset its receive cursor — replaying seq 5..9 at a newborn peer
    /// would park forever behind a gap that no longer exists.  The RTT
    /// estimator resets too: the new process is a new RTT regime.
    pub fn reset_peer(&mut self, peer: u32) -> Vec<M> {
        match self.peers.remove(&peer) {
            Some(link) => link.unacked.into_values().map(|e| e.m).collect(),
            None => Vec::new(),
        }
    }

    /// Caller-clock instant of the earliest armed RTO (`None` when nothing
    /// is outstanding).
    pub fn next_deadline(&self) -> Option<u64> {
        self.peers
            .values()
            .filter(|l| !l.unacked.is_empty())
            .map(|l| l.next_retx_at)
            .min()
    }

    /// Total messages awaiting acknowledgement across all links.
    pub fn unacked_total(&self) -> u64 {
        self.peers.values().map(|l| l.unacked.len() as u64).sum()
    }

    /// Current cumulative ack for `peer` (to piggyback on unrelated sends).
    pub fn recv_cum(&mut self, peer: u32) -> u64 {
        self.link(peer).recv_cum
    }

    /// Per-link reliability health, in peer-rank order.  Links exist once
    /// traffic has touched them; a never-used peer has no row.
    pub fn link_health(&self) -> Vec<LinkHealth> {
        self.peers
            .iter()
            .map(|(&peer, l)| LinkHealth {
                peer,
                srtt: if l.has_sample { l.srtt } else { 0 },
                rttvar: if l.has_sample { l.rttvar } else { 0 },
                rto: l.cur_rto,
                unacked: l.unacked.len() as u64,
                silent_rounds: l.backoff,
            })
            .collect()
    }

    /// Health of one link, if traffic has touched it.
    pub fn peer_health(&self, peer: u32) -> Option<LinkHealth> {
        self.link_health().into_iter().find(|h| h.peer == peer)
    }

    /// The tunables this set was built with.
    pub fn config(&self) -> RelConfig {
        self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CFG: RelConfig = RelConfig {
        rto: 100,
        rto_max: 1_000,
        adaptive: true,
    };

    /// A wide adaptive window so estimator trajectories are visible: the
    /// floor is 10 ns, the cap 1 s.
    const ADAPTIVE: RelConfig = RelConfig {
        rto: 10,
        rto_max: 1_000_000_000,
        adaptive: true,
    };

    #[test]
    fn in_order_delivery_and_ack_clears_buffer() {
        let mut a: ReliableSet<&'static str> = ReliableSet::new(CFG);
        let mut b: ReliableSet<&'static str> = ReliableSet::new(CFG);
        let (s1, _) = a.send(1, "x", 0);
        let (s2, _) = a.send(1, "y", 0);
        assert_eq!((s1, s2), (1, 2));
        assert_eq!(a.unacked_total(), 2);

        let o1 = b.on_data(0, s1, 0, "x", 0);
        assert_eq!(o1.deliver, vec!["x"]);
        assert_eq!(o1.ack, 1);
        let o2 = b.on_data(0, s2, 0, "y", 0);
        assert_eq!(o2.deliver, vec!["y"]);
        assert_eq!(o2.ack, 2);

        a.on_ack(1, 2, 0);
        assert_eq!(a.unacked_total(), 0);
        assert_eq!(a.next_deadline(), None);
    }

    #[test]
    fn reorder_is_parked_then_released_in_order() {
        let mut b: ReliableSet<u32> = ReliableSet::new(CFG);
        let late = b.on_data(0, 2, 0, 22, 0);
        assert!(late.deliver.is_empty());
        assert_eq!(late.ack, 0, "cumulative ack cannot pass the gap");
        assert!(!late.dup);
        let first = b.on_data(0, 1, 0, 11, 0);
        assert_eq!(first.deliver, vec![11, 22], "gap fill releases both");
        assert_eq!(first.ack, 2);
        assert_eq!(b.metrics.out_of_order, 1);
    }

    #[test]
    fn duplicates_are_dropped_but_reacked() {
        let mut b: ReliableSet<u32> = ReliableSet::new(CFG);
        assert_eq!(b.on_data(0, 1, 0, 5, 0).deliver, vec![5]);
        let dup = b.on_data(0, 1, 0, 5, 0);
        assert!(dup.dup);
        assert!(dup.deliver.is_empty());
        assert_eq!(dup.ack, 1, "the ack still travels so the sender stops");
        assert_eq!(b.metrics.dup_drops, 1);
        // A parked message re-arriving is also a duplicate.
        assert!(!b.on_data(0, 3, 0, 7, 0).dup);
        assert!(b.on_data(0, 3, 0, 7, 0).dup);
    }

    #[test]
    fn tick_retransmits_with_bounded_backoff() {
        let mut a: ReliableSet<&'static str> = ReliableSet::new(CFG);
        let _ = a.send(1, "m", 0);
        assert!(a.tick(50).is_empty(), "RTO not expired yet");
        let r1 = a.tick(100);
        assert_eq!(r1.len(), 1);
        assert_eq!((r1[0].peer, r1[0].seq), (1, 1));
        // Backoff doubles: next at 100 + 200.
        assert!(a.tick(250).is_empty());
        assert_eq!(a.tick(300).len(), 1);
        // Cap: after enough rounds the inter-retransmit delay pins to
        // rto_max.
        let mut last_now = 0;
        for _ in 0..10 {
            let now = a.next_deadline().unwrap();
            assert!(!a.tick(now).is_empty());
            last_now = now;
        }
        assert_eq!(a.next_deadline().unwrap(), last_now + CFG.rto_max);
        assert_eq!(a.metrics.retransmits, 12);
    }

    #[test]
    fn ack_progress_resets_backoff() {
        let mut a: ReliableSet<u32> = ReliableSet::new(CFG);
        let _ = a.send(1, 1, 0);
        let _ = a.send(1, 2, 0);
        let _ = a.tick(100); // round 1: backoff 1
        let _ = a.tick(300); // round 2: backoff 2
        a.on_ack(1, 1, 500); // partial progress
        assert_eq!(a.unacked_total(), 1);
        // Next tick retransmits only the survivor...
        let r = a.tick(u64::MAX / 2);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].seq, 2);
    }

    #[test]
    fn lossy_link_simulation_is_exactly_once() {
        // Drop every 3rd transmission attempt, deliver the rest; the
        // protocol must hand the receiver each message exactly once, in
        // order, despite drops hitting first sends and retransmits alike.
        let mut a: ReliableSet<u64> = ReliableSet::new(CFG);
        let mut b: ReliableSet<u64> = ReliableSet::new(CFG);
        let mut now = 0u64;
        let mut attempts = 0u64;
        let mut received: Vec<u64> = Vec::new();
        let mut wire: Vec<(u64, u64, u64)> = Vec::new(); // (seq, ack, m)
        for i in 0..20u64 {
            let (seq, ack) = a.send(1, i, now);
            wire.push((seq, ack, i));
        }
        for round in 0..200 {
            // Transmit queued frames through the lossy medium.
            for (seq, ack, m) in std::mem::take(&mut wire) {
                attempts += 1;
                if attempts.is_multiple_of(3) {
                    continue; // dropped
                }
                let out = b.on_data(0, seq, ack, m, now);
                received.extend(out.deliver);
                // The pure ack travels back, also lossy — and the first
                // rounds lose every ack, forcing retransmits of messages
                // that DID arrive (the dedup path).
                attempts += 1;
                if round >= 2 && !attempts.is_multiple_of(3) {
                    a.on_ack(1, out.ack, now);
                }
            }
            if a.unacked_total() == 0 {
                break;
            }
            now = a.next_deadline().unwrap_or(now + CFG.rto);
            for f in a.tick(now) {
                wire.push((f.seq, f.ack, f.m));
            }
        }
        assert_eq!(received, (0..20).collect::<Vec<_>>());
        assert_eq!(a.unacked_total(), 0);
        assert!(a.metrics.retransmits > 0);
        assert!(b.metrics.dup_drops > 0, "retransmit races must be deduped");
    }

    /// Drive one send/ack round trip with the given RTT and return the
    /// link's health afterwards.
    fn round_trip(a: &mut ReliableSet<u64>, now: &mut u64, rtt: u64) -> LinkHealth {
        let (seq, _) = a.send(1, *now, *now);
        *now += rtt;
        a.on_ack(1, seq, *now);
        a.peer_health(1).unwrap()
    }

    #[test]
    fn srtt_converges_within_16_acks_on_a_stable_link() {
        let mut a: ReliableSet<u64> = ReliableSet::new(ADAPTIVE);
        let mut now = 0u64;
        let mut h = LinkHealth::default();
        for _ in 0..16 {
            h = round_trip(&mut a, &mut now, 5_000);
        }
        assert_eq!(h.srtt, 5_000, "constant RTT converges exactly");
        assert!(
            h.rttvar <= 5_000 / 64,
            "variance must decay below 2% of the initial R/2 within 16 acks \
             (got {})",
            h.rttvar
        );
        assert_eq!(h.rto, 5_000 + 4 * h.rttvar, "RTO tracks srtt + 4·rttvar");
        assert_eq!(h.unacked, 0);
        assert_eq!(h.silent_rounds, 0);
        // The integer 3/4 decay reaches exactly zero a few dozen rounds in.
        for _ in 0..48 {
            h = round_trip(&mut a, &mut now, 5_000);
        }
        assert_eq!(h.rttvar, 0, "variance fully decays on a stable link");
        assert_eq!(h.rto, 5_000);
    }

    #[test]
    fn karn_rule_retransmitted_frames_never_feed_the_estimator() {
        let mut a: ReliableSet<u64> = ReliableSet::new(ADAPTIVE);
        // Establish a baseline estimate from one clean sample.
        let mut now = 0u64;
        let h0 = round_trip(&mut a, &mut now, 1_000);
        assert_eq!(h0.srtt, 1_000);
        // Next frame goes silent long enough to be retransmitted; the ack
        // then arrives absurdly late.  Karn's rule must ignore that sample —
        // the ack is ambiguous about which transmission it answers.
        let (seq, _) = a.send(1, 7, now);
        let deadline = a.next_deadline().unwrap();
        assert_eq!(a.tick(deadline).len(), 1);
        now = deadline + 1_000_000;
        a.on_ack(1, seq, now);
        let h1 = a.peer_health(1).unwrap();
        assert_eq!(h1.srtt, h0.srtt, "retransmitted frame sampled the RTT");
        assert_eq!(h1.rttvar, h0.rttvar);
        assert_eq!(h1.rto, h0.rto);
        // A clean round trip afterwards samples again.
        let h2 = round_trip(&mut a, &mut now, 1_000);
        assert_eq!(h2.srtt, 1_000);
    }

    #[test]
    fn cumulative_ack_samples_newest_unretransmitted_frame() {
        let mut a: ReliableSet<u64> = ReliableSet::new(ADAPTIVE);
        let _ = a.send(1, 1, 0); // seq 1, sent at 0
        let _ = a.send(1, 2, 400); // seq 2, sent at 400
        a.on_ack(1, 2, 500);
        let h = a.peer_health(1).unwrap();
        assert_eq!(
            h.srtt, 100,
            "the freshest covered frame (seq 2, RTT 100) is the sample, \
             not the older seq 1 (RTT 500)"
        );
    }

    #[test]
    fn delay_spike_widens_then_retightens_the_rto() {
        let mut a: ReliableSet<u64> = ReliableSet::new(ADAPTIVE);
        let mut now = 0u64;
        for _ in 0..16 {
            round_trip(&mut a, &mut now, 1_000);
        }
        let calm = a.peer_health(1).unwrap().rto;
        assert!(
            calm < 1_100,
            "16 constant rounds settle the RTO near srtt (got {calm})"
        );
        // A burst of 10× RTTs: the variance term must push the RTO well
        // above the old estimate.
        let mut spiked = 0;
        for _ in 0..4 {
            spiked = round_trip(&mut a, &mut now, 10_000).rto;
        }
        assert!(
            spiked > 4 * calm,
            "spike must widen the RTO (calm {calm}, spiked {spiked})"
        );
        // Back to calm RTTs: the estimator re-tightens toward the base.
        let mut settled = spiked;
        for _ in 0..64 {
            settled = round_trip(&mut a, &mut now, 1_000).rto;
        }
        assert!(
            settled < spiked / 2,
            "RTO must re-tighten after the spike (spiked {spiked}, settled {settled})"
        );
    }

    #[test]
    fn fixed_mode_never_moves_the_rto() {
        let mut a: ReliableSet<u64> = ReliableSet::new(ADAPTIVE.fixed());
        let mut now = 0u64;
        for rtt in [5_000u64, 50_000, 500] {
            let h = round_trip(&mut a, &mut now, rtt);
            assert_eq!(h.rto, ADAPTIVE.rto, "fixed mode pins the RTO");
            assert_eq!(h.srtt, 0, "fixed mode takes no samples");
        }
    }

    #[test]
    fn adaptive_rto_arms_retransmission_from_the_estimate() {
        let mut a: ReliableSet<u64> = ReliableSet::new(ADAPTIVE);
        let mut now = 0u64;
        round_trip(&mut a, &mut now, 2_000);
        // srtt = 2000, rttvar = 1000 → rto = 6000.
        let (_, _) = a.send(1, 9, now);
        assert_eq!(a.next_deadline().unwrap(), now + 6_000);
    }

    #[test]
    fn expire_now_forces_immediate_replay() {
        let mut a: ReliableSet<u64> = ReliableSet::new(CFG);
        let _ = a.send(1, 1, 0);
        let _ = a.send(1, 2, 0);
        // Back off twice so the deadline is far out.
        let _ = a.tick(100);
        let _ = a.tick(300);
        assert!(a.tick(301).is_empty());
        a.expire_now();
        assert_eq!(a.next_deadline(), Some(0));
        let replayed = a.tick(301);
        assert_eq!(replayed.len(), 2, "all unacked frames replay at once");
        assert_eq!(
            a.peer_health(1).unwrap().silent_rounds,
            1,
            "expire_now resets the backoff before the replay round"
        );
    }

    #[test]
    fn reset_peer_renumbers_retained_frames_for_a_reborn_peer() {
        let mut a: ReliableSet<u64> = ReliableSet::new(CFG);
        let mut b: ReliableSet<u64> = ReliableSet::new(CFG);
        // Deliver 1..=3, then leave 4 and 5 unacked when the peer "dies".
        for i in 1..=5u64 {
            let (seq, _) = a.send(1, i * 10, 0);
            if i <= 3 {
                let out = b.on_data(0, seq, 0, i * 10, 0);
                a.on_ack(1, out.ack, 0);
            }
        }
        assert_eq!(a.unacked_total(), 2);
        // The peer restarts with fresh state; replay through a reset link.
        let mut b2: ReliableSet<u64> = ReliableSet::new(CFG);
        let retained = a.reset_peer(1);
        assert_eq!(retained, vec![40, 50], "unacked survive oldest-first");
        let mut delivered = Vec::new();
        for m in retained {
            let (seq, _) = a.send(1, m, 0);
            delivered.extend(b2.on_data(0, seq, 0, m, 0).deliver);
        }
        assert_eq!(delivered, vec![40, 50], "renumbered from seq 1");
        assert_eq!(b2.link_health()[0].unacked, 0);
    }
}
