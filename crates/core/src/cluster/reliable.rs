//! The reliable-delivery sublayer: exactly-once, in-order links over a
//! lossy fabric.
//!
//! The paper's transports assume a lossless RDMA fabric; under a
//! [`tc_chaos::FaultPlan`] that assumption is gone — envelopes drop,
//! duplicate and reorder.  This module implements the classic fix at the
//! framework level, once, for both backends:
//!
//! * **per-link sequence numbers** — every data message on a directed link
//!   carries a monotonically increasing sequence number;
//! * **cumulative acks** — receivers acknowledge the highest in-order
//!   sequence delivered, piggybacked on data and echoed as pure acks;
//! * **timeout-based retransmission with bounded backoff** — unacked
//!   messages are re-sent after an RTO that doubles per silent round up to
//!   a cap (the retries themselves are unbounded: a partition heals
//!   *because* retransmissions keep probing it);
//! * **receiver-side dedup and reordering** — duplicates are dropped,
//!   out-of-order arrivals are buffered until the gap fills.
//!
//! The state machine is transport-agnostic: it never touches clocks,
//! channels or event queues.  Callers feed it their own notion of "now" in
//! nanoseconds — virtual time for [`super::SimTransport`], wall-clock time
//! for [`super::ThreadTransport`] — and transmit whatever frames it hands
//! back.  `M` is the caller's message representation (a decoded
//! [`tc_ucx::OutgoingMessage`] in the simulator, an encoded envelope pair in
//! the threaded backend).

use std::collections::BTreeMap;

/// Reliability tunables.  Times are in nanoseconds of the caller's clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RelConfig {
    /// Initial retransmission timeout.
    pub rto: u64,
    /// Backoff cap: the RTO doubles each silent round but never exceeds
    /// this.
    pub rto_max: u64,
}

impl RelConfig {
    /// Defaults for the discrete-event backend (virtual microseconds).
    pub fn sim_default() -> Self {
        RelConfig {
            rto: 100_000,       // 100 µs
            rto_max: 2_000_000, // 2 ms
        }
    }

    /// Defaults for the threaded backend (wall-clock milliseconds).
    pub fn threads_default() -> Self {
        RelConfig {
            rto: 30_000_000,      // 30 ms
            rto_max: 480_000_000, // 480 ms
        }
    }
}

/// Cumulative reliability counters of one node.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RelMetrics {
    /// Messages re-sent after an RTO expiry.
    pub retransmits: u64,
    /// Duplicate arrivals dropped by the receiver.
    pub dup_drops: u64,
    /// Out-of-order arrivals parked until their gap filled.
    pub out_of_order: u64,
    /// Pure acks emitted.
    pub acks_sent: u64,
}

/// A frame the caller must (re)transmit: message `m` to `peer` with
/// reliability header `(seq, ack)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelFrame<M> {
    /// Destination peer rank.
    pub peer: u32,
    /// The frame's sequence number on the `(local, peer)` link.
    pub seq: u64,
    /// Cumulative ack to piggyback (highest in-order seq received *from*
    /// `peer`).
    pub ack: u64,
    /// The message payload.
    pub m: M,
}

/// What [`ReliableSet::on_data`] decided about one arrival.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataOutcome<M> {
    /// Messages now deliverable in order (possibly several, when this
    /// arrival filled a gap; empty for duplicates and parked arrivals).
    pub deliver: Vec<M>,
    /// Cumulative ack to send back to the peer (always returned — the
    /// sender needs it even, especially, for duplicates).
    pub ack: u64,
    /// True when the arrival was a duplicate and was dropped.
    pub dup: bool,
}

#[derive(Debug)]
struct PeerLink<M> {
    /// Next sequence number to assign (first message is 1).
    next_seq: u64,
    /// Sent but not yet cumulatively acked, keyed by seq.
    unacked: BTreeMap<u64, M>,
    /// Consecutive silent RTO rounds (resets on ack progress).
    backoff: u32,
    /// Caller-clock deadline of the next retransmission round.
    next_retx_at: u64,
    /// Highest in-order sequence received from the peer.
    recv_cum: u64,
    /// Out-of-order arrivals parked until the gap fills.
    parked: BTreeMap<u64, M>,
}

impl<M> Default for PeerLink<M> {
    fn default() -> Self {
        PeerLink {
            next_seq: 1,
            unacked: BTreeMap::new(),
            backoff: 0,
            next_retx_at: u64::MAX,
            recv_cum: 0,
            parked: BTreeMap::new(),
        }
    }
}

/// One node's reliability state across all of its links.
#[derive(Debug)]
pub struct ReliableSet<M> {
    cfg: RelConfig,
    /// Keyed by peer rank.  A BTreeMap so [`ReliableSet::tick`] visits
    /// links in rank order — the retransmission path feeds the chaos
    /// engine, whose crash windows count *global* traffic, so iteration
    /// order is part of the same-seed-same-faults contract.
    peers: BTreeMap<u32, PeerLink<M>>,
    /// Cumulative counters (public: transports export them).
    pub metrics: RelMetrics,
}

impl<M: Clone> ReliableSet<M> {
    /// Fresh state under the given tunables.
    pub fn new(cfg: RelConfig) -> Self {
        ReliableSet {
            cfg,
            peers: BTreeMap::new(),
            metrics: RelMetrics::default(),
        }
    }

    fn link(&mut self, peer: u32) -> &mut PeerLink<M> {
        self.peers.entry(peer).or_default()
    }

    /// Register an outgoing message on the `(local, peer)` link: assigns its
    /// sequence number, buffers it for retransmission and arms the RTO.
    /// Returns the reliability header `(seq, ack)` to attach.
    pub fn send(&mut self, peer: u32, m: M, now: u64) -> (u64, u64) {
        let rto = self.cfg.rto;
        let link = self.link(peer);
        let seq = link.next_seq;
        link.next_seq += 1;
        link.unacked.insert(seq, m);
        if link.next_retx_at == u64::MAX {
            link.next_retx_at = now.saturating_add(rto);
        }
        (seq, link.recv_cum)
    }

    /// Process an arriving data frame from `peer` carrying `(seq, ack)`.
    pub fn on_data(&mut self, peer: u32, seq: u64, ack: u64, m: M, now: u64) -> DataOutcome<M> {
        self.on_ack(peer, ack, now);
        let link = self.link(peer);
        if seq <= link.recv_cum || link.parked.contains_key(&seq) {
            self.metrics.dup_drops += 1;
            let ack = self.link(peer).recv_cum;
            self.metrics.acks_sent += 1;
            return DataOutcome {
                deliver: Vec::new(),
                ack,
                dup: true,
            };
        }
        let mut deliver = Vec::new();
        let mut parked = false;
        if seq == link.recv_cum + 1 {
            link.recv_cum = seq;
            deliver.push(m);
            while let Some(next) = link.parked.remove(&(link.recv_cum + 1)) {
                link.recv_cum += 1;
                deliver.push(next);
            }
        } else {
            link.parked.insert(seq, m);
            parked = true;
        }
        let ack = link.recv_cum;
        if parked {
            self.metrics.out_of_order += 1;
        }
        self.metrics.acks_sent += 1;
        DataOutcome {
            deliver,
            ack,
            dup: false,
        }
    }

    /// Process a cumulative ack from `peer`: everything at or below `ack`
    /// leaves the retransmission buffer.  Progress resets the backoff *and*
    /// re-arms the RTO from `now` — the link is demonstrably live, so any
    /// surviving gap should be probed at the base timeout instead of
    /// waiting out a stale backed-off deadline.
    pub fn on_ack(&mut self, peer: u32, ack: u64, now: u64) {
        let rto = self.cfg.rto;
        let link = self.link(peer);
        let before = link.unacked.len();
        link.unacked.retain(|&seq, _| seq > ack);
        if link.unacked.is_empty() {
            link.next_retx_at = u64::MAX;
            link.backoff = 0;
        } else if link.unacked.len() < before {
            link.backoff = 0;
            link.next_retx_at = now.saturating_add(rto);
        }
    }

    /// Retransmission timer: returns every frame whose link's RTO expired
    /// (all unacked messages of that link, oldest first, with a fresh
    /// cumulative ack), doubling that link's RTO up to the cap.
    pub fn tick(&mut self, now: u64) -> Vec<RelFrame<M>> {
        let mut out = Vec::new();
        let RelConfig { rto, rto_max } = self.cfg;
        let mut retx = 0u64;
        for (&peer, link) in self.peers.iter_mut() {
            if link.unacked.is_empty() || now < link.next_retx_at {
                continue;
            }
            for (&seq, m) in link.unacked.iter() {
                out.push(RelFrame {
                    peer,
                    seq,
                    ack: link.recv_cum,
                    m: m.clone(),
                });
                retx += 1;
            }
            link.backoff = link.backoff.saturating_add(1);
            let delay = rto
                .saturating_mul(1u64 << link.backoff.min(24))
                .min(rto_max);
            link.next_retx_at = now.saturating_add(delay);
        }
        self.metrics.retransmits += retx;
        out
    }

    /// Caller-clock instant of the earliest armed RTO (`None` when nothing
    /// is outstanding).
    pub fn next_deadline(&self) -> Option<u64> {
        self.peers
            .values()
            .filter(|l| !l.unacked.is_empty())
            .map(|l| l.next_retx_at)
            .min()
    }

    /// Total messages awaiting acknowledgement across all links.
    pub fn unacked_total(&self) -> u64 {
        self.peers.values().map(|l| l.unacked.len() as u64).sum()
    }

    /// Current cumulative ack for `peer` (to piggyback on unrelated sends).
    pub fn recv_cum(&mut self, peer: u32) -> u64 {
        self.link(peer).recv_cum
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CFG: RelConfig = RelConfig {
        rto: 100,
        rto_max: 1_000,
    };

    #[test]
    fn in_order_delivery_and_ack_clears_buffer() {
        let mut a: ReliableSet<&'static str> = ReliableSet::new(CFG);
        let mut b: ReliableSet<&'static str> = ReliableSet::new(CFG);
        let (s1, _) = a.send(1, "x", 0);
        let (s2, _) = a.send(1, "y", 0);
        assert_eq!((s1, s2), (1, 2));
        assert_eq!(a.unacked_total(), 2);

        let o1 = b.on_data(0, s1, 0, "x", 0);
        assert_eq!(o1.deliver, vec!["x"]);
        assert_eq!(o1.ack, 1);
        let o2 = b.on_data(0, s2, 0, "y", 0);
        assert_eq!(o2.deliver, vec!["y"]);
        assert_eq!(o2.ack, 2);

        a.on_ack(1, 2, 0);
        assert_eq!(a.unacked_total(), 0);
        assert_eq!(a.next_deadline(), None);
    }

    #[test]
    fn reorder_is_parked_then_released_in_order() {
        let mut b: ReliableSet<u32> = ReliableSet::new(CFG);
        let late = b.on_data(0, 2, 0, 22, 0);
        assert!(late.deliver.is_empty());
        assert_eq!(late.ack, 0, "cumulative ack cannot pass the gap");
        assert!(!late.dup);
        let first = b.on_data(0, 1, 0, 11, 0);
        assert_eq!(first.deliver, vec![11, 22], "gap fill releases both");
        assert_eq!(first.ack, 2);
        assert_eq!(b.metrics.out_of_order, 1);
    }

    #[test]
    fn duplicates_are_dropped_but_reacked() {
        let mut b: ReliableSet<u32> = ReliableSet::new(CFG);
        assert_eq!(b.on_data(0, 1, 0, 5, 0).deliver, vec![5]);
        let dup = b.on_data(0, 1, 0, 5, 0);
        assert!(dup.dup);
        assert!(dup.deliver.is_empty());
        assert_eq!(dup.ack, 1, "the ack still travels so the sender stops");
        assert_eq!(b.metrics.dup_drops, 1);
        // A parked message re-arriving is also a duplicate.
        assert!(!b.on_data(0, 3, 0, 7, 0).dup);
        assert!(b.on_data(0, 3, 0, 7, 0).dup);
    }

    #[test]
    fn tick_retransmits_with_bounded_backoff() {
        let mut a: ReliableSet<&'static str> = ReliableSet::new(CFG);
        let _ = a.send(1, "m", 0);
        assert!(a.tick(50).is_empty(), "RTO not expired yet");
        let r1 = a.tick(100);
        assert_eq!(r1.len(), 1);
        assert_eq!((r1[0].peer, r1[0].seq), (1, 1));
        // Backoff doubles: next at 100 + 200.
        assert!(a.tick(250).is_empty());
        assert_eq!(a.tick(300).len(), 1);
        // Cap: after enough rounds the inter-retransmit delay pins to
        // rto_max.
        let mut last_now = 0;
        for _ in 0..10 {
            let now = a.next_deadline().unwrap();
            assert!(!a.tick(now).is_empty());
            last_now = now;
        }
        assert_eq!(a.next_deadline().unwrap(), last_now + CFG.rto_max);
        assert_eq!(a.metrics.retransmits, 12);
    }

    #[test]
    fn ack_progress_resets_backoff() {
        let mut a: ReliableSet<u32> = ReliableSet::new(CFG);
        let _ = a.send(1, 1, 0);
        let _ = a.send(1, 2, 0);
        let _ = a.tick(100); // round 1: backoff 1
        let _ = a.tick(300); // round 2: backoff 2
        a.on_ack(1, 1, 500); // partial progress
        assert_eq!(a.unacked_total(), 1);
        // Next tick retransmits only the survivor...
        let r = a.tick(u64::MAX / 2);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].seq, 2);
    }

    #[test]
    fn lossy_link_simulation_is_exactly_once() {
        // Drop every 3rd transmission attempt, deliver the rest; the
        // protocol must hand the receiver each message exactly once, in
        // order, despite drops hitting first sends and retransmits alike.
        let mut a: ReliableSet<u64> = ReliableSet::new(CFG);
        let mut b: ReliableSet<u64> = ReliableSet::new(CFG);
        let mut now = 0u64;
        let mut attempts = 0u64;
        let mut received: Vec<u64> = Vec::new();
        let mut wire: Vec<(u64, u64, u64)> = Vec::new(); // (seq, ack, m)
        for i in 0..20u64 {
            let (seq, ack) = a.send(1, i, now);
            wire.push((seq, ack, i));
        }
        for round in 0..200 {
            // Transmit queued frames through the lossy medium.
            for (seq, ack, m) in std::mem::take(&mut wire) {
                attempts += 1;
                if attempts.is_multiple_of(3) {
                    continue; // dropped
                }
                let out = b.on_data(0, seq, ack, m, now);
                received.extend(out.deliver);
                // The pure ack travels back, also lossy — and the first
                // rounds lose every ack, forcing retransmits of messages
                // that DID arrive (the dedup path).
                attempts += 1;
                if round >= 2 && !attempts.is_multiple_of(3) {
                    a.on_ack(1, out.ack, now);
                }
            }
            if a.unacked_total() == 0 {
                break;
            }
            now = a.next_deadline().unwrap_or(now + CFG.rto);
            for f in a.tick(now) {
                wire.push((f.seq, f.ack, f.m));
            }
        }
        assert_eq!(received, (0..20).collect::<Vec<_>>());
        assert_eq!(a.unacked_total(), 0);
        assert!(a.metrics.retransmits > 0);
        assert!(b.metrics.dup_drops > 0, "retransmit races must be deduped");
    }
}
