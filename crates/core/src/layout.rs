//! Node memory-layout conventions and X-RDMA result-return plumbing.
//!
//! Every simulated process element owns a sparse 64-bit address space.  The
//! framework reserves a few well-known regions in it:
//!
//! | region | base | purpose |
//! |---|---|---|
//! | payload staging | [`PAYLOAD_STAGING_BASE`] | where an arriving ifunc's payload is placed before `main(payload_ptr, len, target_ptr)` is invoked |
//! | target region | [`TARGET_REGION_BASE`] | the "user-defined target pointer" handed to every ifunc (the TSI counter lives at its first word) |
//! | result mailbox | [`RESULT_MAILBOX_BASE`] | where X-RDMA `ReturnResult` operations PUT their `(flag, value)` pairs |
//! | data region | [`DATA_REGION_BASE`] | workload data such as the DAPC pointer-table shard |
//!
//! The result mailbox implements the paper's *ReturnResult* X-RDMA operation:
//! the final ifunc in a chase PUTs the result into the requesting client's
//! mailbox slot; the client discovers completion by polling the slot's flag
//! word — a pure one-sided completion path.

/// Base address of the payload staging buffer.
pub const PAYLOAD_STAGING_BASE: u64 = 0x1000_0000;
/// Base address of the user target region.
pub const TARGET_REGION_BASE: u64 = 0x2000_0000;
/// Base address of the X-RDMA result mailbox.
pub const RESULT_MAILBOX_BASE: u64 = 0x3000_0000;
/// Number of result mailbox slots.
pub const RESULT_MAILBOX_SLOTS: u64 = 4096;
/// Bytes per result mailbox slot: a completion flag word and a value word.
pub const RESULT_SLOT_BYTES: u64 = 16;
/// Base address of the workload data region (pointer-table shards, etc.).
pub const DATA_REGION_BASE: u64 = 0x4000_0000;

/// Address of result-mailbox slot `slot`.
pub fn result_slot_addr(slot: u64) -> u64 {
    RESULT_MAILBOX_BASE + (slot % RESULT_MAILBOX_SLOTS) * RESULT_SLOT_BYTES
}

/// True when `addr` falls inside the result mailbox region.
pub fn is_result_mailbox_addr(addr: u64) -> bool {
    (RESULT_MAILBOX_BASE..RESULT_MAILBOX_BASE + RESULT_MAILBOX_SLOTS * RESULT_SLOT_BYTES)
        .contains(&addr)
}

/// Slot index of a result-mailbox address.
pub fn result_slot_of_addr(addr: u64) -> Option<u64> {
    if is_result_mailbox_addr(addr) {
        Some((addr - RESULT_MAILBOX_BASE) / RESULT_SLOT_BYTES)
    } else {
        None
    }
}

/// Encode a result-mailbox record: flag word (1 = complete) followed by the
/// value word.
pub fn encode_result_record(value: u64) -> [u8; 16] {
    let mut out = [0u8; 16];
    out[..8].copy_from_slice(&1u64.to_le_bytes());
    out[8..].copy_from_slice(&value.to_le_bytes());
    out
}

/// Decode a result-mailbox record, returning the value if the flag says the
/// record is complete.
pub fn decode_result_record(bytes: &[u8]) -> Option<u64> {
    if bytes.len() < 16 {
        return None;
    }
    let flag = u64::from_le_bytes(bytes[..8].try_into().ok()?);
    if flag == 1 {
        Some(u64::from_le_bytes(bytes[8..16].try_into().ok()?))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_do_not_overlap() {
        let regions = [
            PAYLOAD_STAGING_BASE,
            TARGET_REGION_BASE,
            RESULT_MAILBOX_BASE,
            DATA_REGION_BASE,
        ];
        for (i, a) in regions.iter().enumerate() {
            for b in regions.iter().skip(i + 1) {
                assert!(a.abs_diff(*b) >= 0x1000_0000);
            }
        }
    }

    #[test]
    fn slot_addressing_roundtrips() {
        for slot in [0u64, 1, 17, RESULT_MAILBOX_SLOTS - 1] {
            let addr = result_slot_addr(slot);
            assert!(is_result_mailbox_addr(addr));
            assert_eq!(result_slot_of_addr(addr), Some(slot));
        }
        assert!(!is_result_mailbox_addr(TARGET_REGION_BASE));
        assert_eq!(result_slot_of_addr(DATA_REGION_BASE), None);
    }

    #[test]
    fn slot_index_wraps_instead_of_escaping_the_region() {
        let addr = result_slot_addr(RESULT_MAILBOX_SLOTS + 3);
        assert!(is_result_mailbox_addr(addr));
        assert_eq!(result_slot_of_addr(addr), Some(3));
    }

    #[test]
    fn result_record_roundtrip() {
        let rec = encode_result_record(0xdead_beef);
        assert_eq!(decode_result_record(&rec), Some(0xdead_beef));
        let incomplete = [0u8; 16];
        assert_eq!(decode_result_record(&incomplete), None);
        assert_eq!(decode_result_record(&[1, 2, 3]), None);
    }
}
