//! The sender-side code cache.
//!
//! Section III-D: "When the source process sends an ifunc message, the
//! Three-Chains runtime first checks a hash table to see if it has sent an
//! ifunc message of this particular type to the specified UCP endpoint
//! before.  If not, then the endpoint is added to the hash table and the
//! entire message is sent.  If the UCP endpoint is already in the hash table
//! […] the runtime will only send the message up to the second last signal
//! byte, skipping the code section."
//!
//! The cache is keyed by `(ifunc name, destination endpoint)`.  It is purely
//! a sender-side optimisation: correctness never depends on it because the
//! receiver auto-registers on the first full frame it sees and can always ask
//! for retransmission by reporting [`crate::error::CoreError::TruncatedWithoutRegistration`].

use std::collections::HashSet;
use tc_ucx::WorkerAddr;

/// Decision made for one send.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendDecision {
    /// First send of this ifunc type to this endpoint: ship the full frame.
    SendFull,
    /// The endpoint has seen this type before: ship the truncated frame.
    SendTruncated,
}

/// Sender-side cache of which endpoints have seen which ifunc types.
#[derive(Debug, Default, Clone)]
pub struct SenderCache {
    seen: HashSet<(String, WorkerAddr)>,
    /// Number of sends that shipped the full frame.
    pub full_sends: u64,
    /// Number of sends that shipped the truncated frame.
    pub truncated_sends: u64,
}

impl SenderCache {
    /// Empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a send of `ifunc_name` to `endpoint` and return what should be
    /// transmitted.
    pub fn on_send(&mut self, ifunc_name: &str, endpoint: WorkerAddr) -> SendDecision {
        if self.seen.contains(&(ifunc_name.to_string(), endpoint)) {
            self.truncated_sends += 1;
            SendDecision::SendTruncated
        } else {
            self.seen.insert((ifunc_name.to_string(), endpoint));
            self.full_sends += 1;
            SendDecision::SendFull
        }
    }

    /// Peek without recording (used by benchmarks to predict message sizes).
    pub fn would_truncate(&self, ifunc_name: &str, endpoint: WorkerAddr) -> bool {
        self.seen.contains(&(ifunc_name.to_string(), endpoint))
    }

    /// Forget an endpoint entirely (connection teardown).
    pub fn forget_endpoint(&mut self, endpoint: WorkerAddr) {
        self.seen.retain(|(_, ep)| *ep != endpoint);
    }

    /// Forget one ifunc type everywhere (ifunc de-registration on the source:
    /// the next send must ship code again because targets may also have
    /// dropped it).
    pub fn forget_ifunc(&mut self, ifunc_name: &str) {
        self.seen.retain(|(name, _)| name != ifunc_name);
    }

    /// Number of `(ifunc, endpoint)` pairs currently cached.
    pub fn len(&self) -> usize {
        self.seen.len()
    }

    /// True when nothing has been cached.
    pub fn is_empty(&self) -> bool {
        self.seen.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_send_full_then_truncated() {
        let mut c = SenderCache::new();
        let ep = WorkerAddr(3);
        assert_eq!(c.on_send("tsi", ep), SendDecision::SendFull);
        assert_eq!(c.on_send("tsi", ep), SendDecision::SendTruncated);
        assert_eq!(c.on_send("tsi", ep), SendDecision::SendTruncated);
        assert_eq!(c.full_sends, 1);
        assert_eq!(c.truncated_sends, 2);
    }

    #[test]
    fn cache_is_per_endpoint_and_per_type() {
        let mut c = SenderCache::new();
        assert_eq!(c.on_send("tsi", WorkerAddr(1)), SendDecision::SendFull);
        assert_eq!(c.on_send("tsi", WorkerAddr(2)), SendDecision::SendFull);
        assert_eq!(c.on_send("chaser", WorkerAddr(1)), SendDecision::SendFull);
        assert_eq!(c.on_send("tsi", WorkerAddr(1)), SendDecision::SendTruncated);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn forgetting_endpoint_resends_code() {
        let mut c = SenderCache::new();
        c.on_send("tsi", WorkerAddr(1));
        c.on_send("chaser", WorkerAddr(1));
        c.on_send("tsi", WorkerAddr(2));
        c.forget_endpoint(WorkerAddr(1));
        assert_eq!(c.on_send("tsi", WorkerAddr(1)), SendDecision::SendFull);
        assert!(c.would_truncate("tsi", WorkerAddr(2)));
    }

    #[test]
    fn forgetting_ifunc_resends_everywhere() {
        let mut c = SenderCache::new();
        c.on_send("tsi", WorkerAddr(1));
        c.on_send("tsi", WorkerAddr(2));
        c.on_send("chaser", WorkerAddr(1));
        c.forget_ifunc("tsi");
        assert_eq!(c.on_send("tsi", WorkerAddr(1)), SendDecision::SendFull);
        assert_eq!(c.on_send("tsi", WorkerAddr(2)), SendDecision::SendFull);
        assert!(c.would_truncate("chaser", WorkerAddr(1)));
    }

    #[test]
    fn would_truncate_does_not_mutate() {
        let mut c = SenderCache::new();
        assert!(!c.would_truncate("tsi", WorkerAddr(0)));
        assert!(c.is_empty());
        c.on_send("tsi", WorkerAddr(0));
        assert!(c.would_truncate("tsi", WorkerAddr(0)));
    }
}
