//! Ifunc libraries, the toolchain that builds them, registration, and
//! user-facing ifunc messages.
//!
//! The paper's workflow (Figure 1): the developer writes an ifunc library
//! with an entry function, runs it through the Three-Chains toolchain, and
//! registers it by name in the application, getting back a handle used to
//! create and send ifunc messages.  Here the "toolchain" consumes a portable
//! [`tc_bitir::Module`] and produces, depending on the chosen representation:
//!
//! * a **fat-bitcode archive** covering a set of target triples plus the
//!   dependency list (the bitcode path, Section III-C), or
//! * one **binary object** per target triple (the binary path, Section
//!   III-B), of which the sender must pick one matching the destination ISA.

use crate::error::{CoreError, Result};
use crate::frame::{CodeRepr, MessageFrame};
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};
use tc_bitir::{FatBitcode, Module, TargetTriple};
use tc_jit::{build_object, CompileOptions, OptLevel};
use tc_ucx::Bytes;

/// Output of the toolchain for one ifunc library.
#[derive(Debug, Clone)]
pub struct IfuncLibrary {
    /// Library name (the registration key; must equal the module name).
    pub name: String,
    /// The portable source module (kept for local execution and re-targeting).
    pub module: Module,
    /// Fat-bitcode archive (bitcode representation).
    pub fat_bitcode: FatBitcode,
    /// Encoded fat-bitcode bytes (what ships in the frame's code section).
    /// A shared view: every message created from this library references the
    /// same allocation.
    pub fat_bitcode_bytes: Bytes,
    /// Per-target binary objects, keyed by triple name (binary representation).
    pub binaries: HashMap<String, Vec<u8>>,
    /// Dependency list (the `.deps` file contents).
    pub deps: Vec<String>,
}

impl IfuncLibrary {
    /// Size of the bitcode code section in bytes.
    pub fn bitcode_size(&self) -> usize {
        self.fat_bitcode_bytes.len()
    }

    /// Size of the binary code section for a given target triple name.
    pub fn binary_size(&self, triple: &str) -> Option<usize> {
        self.binaries.get(triple).map(Vec::len)
    }

    /// Binary object bytes for a target triple name.
    pub fn binary_for(&self, triple: &str) -> Result<&[u8]> {
        self.binaries.get(triple).map(Vec::as_slice).ok_or_else(|| {
            CoreError::Toolchain(format!(
                "no binary object for target `{triple}` in ifunc `{}` (built for: {})",
                self.name,
                self.binaries.keys().cloned().collect::<Vec<_>>().join(", ")
            ))
        })
    }
}

/// Options controlling the toolchain.
#[derive(Debug, Clone)]
pub struct ToolchainOptions {
    /// Target triples to include in the fat-bitcode archive and to build
    /// binary objects for.
    pub targets: Vec<TargetTriple>,
    /// Optimisation level used for the ahead-of-time (binary) builds.
    pub opt_level: OptLevel,
    /// Also build per-target binary objects (disable to model a
    /// bitcode-only deployment).
    pub build_binaries: bool,
}

impl Default for ToolchainOptions {
    fn default() -> Self {
        ToolchainOptions {
            targets: TargetTriple::default_toolchain_targets(),
            opt_level: OptLevel::O2,
            build_binaries: true,
        }
    }
}

/// Run the toolchain: verify the module, build the fat-bitcode archive and
/// (optionally) the per-target binary objects.
pub fn build_ifunc_library(module: &Module, options: &ToolchainOptions) -> Result<IfuncLibrary> {
    tc_bitir::verify_module(module)?;
    if module.entry().is_none() {
        return Err(CoreError::Toolchain(format!(
            "ifunc library `{}` has no `{}` entry function",
            module.name,
            Module::ENTRY_NAME
        )));
    }
    let fat = FatBitcode::from_module(module, &options.targets)?;
    let fat_bytes = Bytes::from(fat.encode());

    let mut binaries = HashMap::new();
    if options.build_binaries {
        for &t in &options.targets {
            let obj = build_object(
                module,
                t,
                CompileOptions {
                    opt_level: options.opt_level,
                    verify: false, // already verified above
                },
            )
            .map_err(|e| CoreError::Toolchain(e.to_string()))?;
            binaries.insert(t.name(), obj.encode());
        }
    }

    Ok(IfuncLibrary {
        name: module.name.clone(),
        module: module.clone(),
        fat_bitcode: fat,
        fat_bitcode_bytes: fat_bytes,
        binaries,
        deps: module.deps.clone(),
    })
}

/// Handle returned by registration, used to create messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IfuncHandle(pub u32);

/// The per-process registry of ifunc libraries the application has
/// registered (source side) or that have arrived and been auto-registered
/// (target side).
#[derive(Debug, Default)]
pub struct IfuncRegistry {
    by_name: HashMap<String, IfuncHandle>,
    libraries: Vec<Arc<IfuncLibrary>>,
}

impl IfuncRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a library, returning its handle.  Registering the same name
    /// twice returns the existing handle (idempotent, like the paper's
    /// name-keyed registration).
    pub fn register(&mut self, library: IfuncLibrary) -> IfuncHandle {
        if let Some(&h) = self.by_name.get(&library.name) {
            return h;
        }
        let handle = IfuncHandle(self.libraries.len() as u32);
        self.by_name.insert(library.name.clone(), handle);
        self.libraries.push(Arc::new(library));
        handle
    }

    /// Look up a handle by name.
    pub fn handle(&self, name: &str) -> Option<IfuncHandle> {
        self.by_name.get(name).copied()
    }

    /// Fetch a registered library.
    pub fn get(&self, handle: IfuncHandle) -> Result<&Arc<IfuncLibrary>> {
        self.libraries
            .get(handle.0 as usize)
            .ok_or_else(|| CoreError::UnknownIfunc {
                name: format!("#{}", handle.0),
            })
    }

    /// Fetch a registered library by name.
    pub fn get_by_name(&self, name: &str) -> Result<&Arc<IfuncLibrary>> {
        let h = self.handle(name).ok_or_else(|| CoreError::UnknownIfunc {
            name: name.to_string(),
        })?;
        self.get(h)
    }

    /// Number of registered libraries.
    pub fn len(&self) -> usize {
        self.libraries.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.libraries.is_empty()
    }

    /// Names of registered libraries in handle order.
    pub fn names(&self) -> Vec<&str> {
        self.libraries.iter().map(|l| l.name.as_str()).collect()
    }
}

/// A user-facing ifunc message: a registered library plus a payload, bound to
/// a code representation.  Creating the message materialises the full frame;
/// the caching layer decides per-destination how much of it to transmit.
///
/// The frame is never modified by sending, so both wire encodings are
/// computed at most once ([`IfuncMessage::wire_full`] /
/// [`IfuncMessage::wire_truncated`]) and every send after the first clones a
/// shared [`Bytes`] view — re-sending a message to many destinations copies
/// nothing.
#[derive(Debug, Clone, Default)]
struct WireCache {
    full: OnceLock<Bytes>,
    truncated: OnceLock<Bytes>,
}

/// See [`WireCache`] above for the send-side encoding cache.
#[derive(Debug, Clone)]
pub struct IfuncMessage {
    /// The library handle this message is an instance of.
    pub handle: IfuncHandle,
    /// The frame (header + payload + code), never modified by sending.
    pub frame: MessageFrame,
    wire: WireCache,
}

impl IfuncMessage {
    /// The full wire encoding (header + payload + code), encoded on first
    /// use and shared by every subsequent send.
    pub fn wire_full(&self) -> Bytes {
        self.wire
            .full
            .get_or_init(|| self.frame.encode_full())
            .clone()
    }

    /// The truncated wire encoding (code section elided), encoded on first
    /// use and shared by every subsequent send.
    pub fn wire_truncated(&self) -> Bytes {
        self.wire
            .truncated
            .get_or_init(|| self.frame.encode_truncated())
            .clone()
    }

    /// Create a bitcode-representation message.
    pub fn bitcode(handle: IfuncHandle, library: &IfuncLibrary, payload: Vec<u8>) -> Self {
        IfuncMessage {
            handle,
            frame: MessageFrame::new(
                library.name.clone(),
                CodeRepr::Bitcode,
                payload,
                library.fat_bitcode_bytes.clone(),
                library.deps.clone(),
            ),
            wire: WireCache::default(),
        }
    }

    /// Create a binary-representation message targeted at a specific triple.
    /// Fails when the library was not built for that triple — the
    /// cross-compilation burden the paper describes for binary ifuncs.
    pub fn binary(
        handle: IfuncHandle,
        library: &IfuncLibrary,
        target_triple: &str,
        payload: Vec<u8>,
    ) -> Result<Self> {
        let code = library.binary_for(target_triple)?.to_vec();
        Ok(IfuncMessage {
            handle,
            wire: WireCache::default(),
            frame: MessageFrame::new(
                library.name.clone(),
                CodeRepr::Binary,
                payload,
                code,
                library.deps.clone(),
            ),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_bitir::{BinOp, ModuleBuilder, ScalarType};

    pub(crate) fn tsi_module() -> Module {
        let mut mb = ModuleBuilder::new("tsi");
        {
            let mut f = mb.entry_function();
            let payload = f.param(0);
            let target = f.param(2);
            let delta = f.load(ScalarType::U8, payload, 0);
            let counter = f.load(ScalarType::U64, target, 0);
            let sum = f.bin(BinOp::Add, ScalarType::U64, counter, delta);
            f.store(ScalarType::U64, sum, target, 0);
            let z = f.const_i64(0);
            f.ret(z);
            f.finish();
        }
        mb.build()
    }

    #[test]
    fn toolchain_builds_bitcode_and_binaries() {
        let lib = build_ifunc_library(&tsi_module(), &ToolchainOptions::default()).unwrap();
        assert_eq!(lib.name, "tsi");
        assert!(lib.bitcode_size() > 2000, "fat bitcode should be KiB-scale");
        assert_eq!(
            lib.binaries.len(),
            TargetTriple::default_toolchain_targets().len()
        );
        let xeon = lib.binary_size("x86_64-xeon-e5-sim").unwrap();
        assert!(
            xeon < lib.bitcode_size() / 4,
            "binary must be much smaller than fat bitcode"
        );
        assert!(lib.binary_for("mips-unknown").is_err());
    }

    #[test]
    fn toolchain_rejects_module_without_entry() {
        let mut mb = ModuleBuilder::new("noentry");
        {
            let mut f = mb.function("helper", vec![], None);
            f.ret_void();
            f.finish();
        }
        let err = build_ifunc_library(&mb.build(), &ToolchainOptions::default()).unwrap_err();
        assert!(err.to_string().contains("entry"));
    }

    #[test]
    fn bitcode_only_toolchain_skips_binaries() {
        let opts = ToolchainOptions {
            build_binaries: false,
            ..Default::default()
        };
        let lib = build_ifunc_library(&tsi_module(), &opts).unwrap();
        assert!(lib.binaries.is_empty());
        assert!(lib.bitcode_size() > 0);
    }

    #[test]
    fn registry_registration_is_idempotent() {
        let lib = build_ifunc_library(&tsi_module(), &ToolchainOptions::default()).unwrap();
        let mut reg = IfuncRegistry::new();
        let h1 = reg.register(lib.clone());
        let h2 = reg.register(lib);
        assert_eq!(h1, h2);
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.handle("tsi"), Some(h1));
        assert!(reg.get_by_name("tsi").is_ok());
        assert!(reg.get_by_name("other").is_err());
        assert_eq!(reg.names(), vec!["tsi"]);
    }

    #[test]
    fn messages_carry_the_right_code_section() {
        let lib = build_ifunc_library(&tsi_module(), &ToolchainOptions::default()).unwrap();
        let mut reg = IfuncRegistry::new();
        let h = reg.register(lib);
        let lib = reg.get(h).unwrap().clone();

        let bc = IfuncMessage::bitcode(h, &lib, vec![1]);
        assert_eq!(bc.frame.repr, CodeRepr::Bitcode);
        assert_eq!(bc.frame.code.len(), lib.bitcode_size());

        let bin = IfuncMessage::binary(h, &lib, "aarch64-a64fx-sim", vec![1]).unwrap();
        assert_eq!(bin.frame.repr, CodeRepr::Binary);
        assert_eq!(
            bin.frame.code.len(),
            lib.binary_size("aarch64-a64fx-sim").unwrap()
        );

        assert!(IfuncMessage::binary(h, &lib, "riscv64-generic-sim", vec![1]).is_err());
    }
}
