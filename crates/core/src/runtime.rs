//! The per-node Three-Chains runtime.
//!
//! Every process element (host CPU process or DPU Arm-core process) owns a
//! [`NodeRuntime`]: the UCP-like worker, the node's memory, the ORC-like JIT
//! session, the sender-side code cache, the target-side registration table,
//! and the Active-Message handler table used by the baseline mode.
//!
//! The runtime implements both halves of the paper's workflow:
//!
//! * **source side** — register ifunc libraries, create messages, send them
//!   with transparent code-section caching ([`NodeRuntime::send_ifunc`]);
//! * **target side** — poll for delivered messages
//!   ([`NodeRuntime::poll`]), auto-register ifuncs on first arrival (JIT the
//!   bitcode or load the binary), invoke the entry function with the payload
//!   and the target pointer, and carry out any follow-on actions the running
//!   ifunc requested (recursive forwards, PUTs, result returns) — the X-RDMA
//!   behaviour.
//!
//! Framework services are exposed to running ifuncs as external symbols
//! (`tc_node_id`, `tc_put`, `tc_forward_self`, `tc_return_result`, …)
//! resolved through the execution engine's host interface, mirroring how the
//! real system lets injected code call back into UCX.

use crate::cache::{SendDecision, SenderCache};
use crate::error::{CoreError, Result};
use crate::frame::{CodeRepr, DecodedFrame, MessageFrame};
use crate::ifunc::{IfuncHandle, IfuncLibrary, IfuncMessage, IfuncRegistry};
use crate::layout::{
    decode_result_record, encode_result_record, is_result_mailbox_addr, result_slot_addr,
    result_slot_of_addr, PAYLOAD_STAGING_BASE, TARGET_REGION_BASE,
};
use crate::metrics::{OutcomeKind, ProcessOutcome, RuntimeStats};
use std::collections::HashMap;
use std::sync::Arc;
use tc_bitir::{FatBitcode, TargetTriple};
use tc_jit::{Engine, ExternalHost, JitError, MachModule, Memory, OptLevel, OrcJit, SparseMemory};
use tc_ucx::{
    AmHandlerId, BufPool, Bytes, OutgoingMessage, RequestId, UcpOp, Worker, WorkerAddr, WorkerEvent,
};

/// Follow-on work requested by executing code (ifunc externals or native AM
/// handlers); the runtime converts these into posted fabric operations after
/// the execution completes.
#[derive(Debug, Clone, PartialEq)]
pub enum HostAction {
    /// One-sided PUT of `data` into `remote_addr` on node `dst`.
    Put {
        /// Destination node.
        dst: WorkerAddr,
        /// Destination address in the remote node's memory.
        remote_addr: u64,
        /// Bytes to write.
        data: Vec<u8>,
    },
    /// Re-send the currently executing ifunc (same code) to `dst` with a new
    /// payload — the recursive-propagation primitive behind X-RDMA.
    ForwardSelf {
        /// Destination node.
        dst: WorkerAddr,
        /// New payload bytes.
        payload: Vec<u8>,
    },
    /// Send a (different) registered ifunc by name.
    SendIfunc {
        /// Registered ifunc name.
        name: String,
        /// Destination node.
        dst: WorkerAddr,
        /// Payload bytes.
        payload: Vec<u8>,
    },
    /// Send an Active Message to a predeployed handler.
    SendAm {
        /// Handler name (must be predeployed on the destination).
        handler: String,
        /// Destination node.
        dst: WorkerAddr,
        /// Payload bytes.
        payload: Vec<u8>,
    },
    /// X-RDMA ReturnResult: deliver `value` into result-mailbox `slot` on
    /// node `dst`.
    ReturnResult {
        /// Destination (requesting) node.
        dst: WorkerAddr,
        /// Mailbox slot index.
        slot: u64,
        /// Result value.
        value: u64,
    },
}

/// Execution context handed to native Active-Message handlers.
pub struct AmContext<'a> {
    /// This node's rank.
    pub node_id: u32,
    /// Number of nodes in the job.
    pub num_nodes: u32,
    /// The node's memory.
    pub memory: &'a mut SparseMemory,
    /// Follow-on actions the handler wants performed.
    pub actions: &'a mut Vec<HostAction>,
}

/// A native (predeployed) Active-Message handler.  Returns an estimated
/// cycle count for the work it did, used by the cost model.
pub type NativeAmHandler = Arc<dyn Fn(&mut AmContext<'_>, &[u8]) -> u64 + Send + Sync>;

/// A completion event surfaced to the local application (client-side logic).
#[derive(Debug, Clone, PartialEq)]
pub enum Completion {
    /// A posted GET finished.
    Get {
        /// The GET's request id.
        request: RequestId,
        /// Fetched bytes (zero-copy view of the received wire buffer).
        data: Bytes,
    },
    /// An X-RDMA result arrived in the local mailbox.
    Result {
        /// Mailbox slot.
        slot: u64,
        /// Result value.
        value: u64,
    },
    /// A confirmed PUT ([`NodeRuntime::post_put_confirmed`]) was applied on
    /// the remote node and its acknowledgement travelled back.
    Put {
        /// The confirmed PUT's request id.
        request: RequestId,
    },
}

/// Target-side record of an ifunc that has been received and registered.
struct ReceivedIfunc {
    repr: CodeRepr,
    /// The code section as originally received — a shared view of the
    /// arrival buffer, kept so this node can itself forward the ifunc to
    /// peers that have not seen it (recursive propagation) without copying.
    code: Bytes,
    deps: Vec<String>,
    /// Loaded machine module for binary ifuncs (bitcode ifuncs live in the
    /// JIT cache keyed by name).
    binary: Option<Arc<MachModule>>,
}

/// The per-node Three-Chains runtime.
pub struct NodeRuntime {
    node_id: WorkerAddr,
    num_nodes: u32,
    triple: TargetTriple,
    /// The UCP-like worker owning this node's mailboxes.
    pub worker: Worker,
    /// The node's memory.
    pub memory: SparseMemory,
    jit: OrcJit,
    engine: Engine,
    registry: IfuncRegistry,
    sender_cache: SenderCache,
    received: HashMap<String, ReceivedIfunc>,
    am_handlers: HashMap<String, NativeAmHandler>,
    am_names: Vec<String>,
    am_ids: HashMap<String, AmHandlerId>,
    completions: Vec<Completion>,
    /// Recycled scratch buffers for reply payloads (GET serving).
    reply_pool: BufPool,
    /// Cumulative counters.
    pub stats: RuntimeStats,
}

impl std::fmt::Debug for NodeRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NodeRuntime")
            .field("node_id", &self.node_id)
            .field("num_nodes", &self.num_nodes)
            .field("triple", &self.triple.name())
            .field("registered", &self.registry.names())
            .field("received", &self.received.keys().collect::<Vec<_>>())
            .field("stats", &self.stats)
            .finish()
    }
}

impl NodeRuntime {
    /// Create a runtime for node `node_id` of a `num_nodes`-node job running
    /// on the given target triple (JIT at the default `O2`).
    pub fn new(node_id: WorkerAddr, num_nodes: u32, triple: TargetTriple) -> Self {
        Self::with_opt_level(node_id, num_nodes, triple, OptLevel::O2)
    }

    /// Create a runtime whose JIT session compiles at `opt_level`.
    pub fn with_opt_level(
        node_id: WorkerAddr,
        num_nodes: u32,
        triple: TargetTriple,
        opt_level: OptLevel,
    ) -> Self {
        NodeRuntime {
            node_id,
            num_nodes,
            triple,
            worker: Worker::new(node_id),
            memory: SparseMemory::new(),
            jit: OrcJit::new(triple, opt_level),
            engine: Engine::new(),
            registry: IfuncRegistry::new(),
            sender_cache: SenderCache::new(),
            received: HashMap::new(),
            am_handlers: HashMap::new(),
            am_names: Vec::new(),
            am_ids: HashMap::new(),
            completions: Vec::new(),
            reply_pool: BufPool::new(),
            stats: RuntimeStats::default(),
        }
    }

    /// This node's rank.
    pub fn node_id(&self) -> WorkerAddr {
        self.node_id
    }

    /// Number of nodes in the job.
    pub fn num_nodes(&self) -> u32 {
        self.num_nodes
    }

    /// Target triple of this node.
    pub fn triple(&self) -> TargetTriple {
        self.triple
    }

    /// Statistics of the embedded JIT session.
    pub fn jit_stats(&self) -> tc_jit::JitStats {
        self.jit.stats()
    }

    /// Sender-cache statistics `(full_sends, truncated_sends)`.
    pub fn sender_cache_stats(&self) -> (u64, u64) {
        (
            self.sender_cache.full_sends,
            self.sender_cache.truncated_sends,
        )
    }

    // --- source-side API ----------------------------------------------------

    /// Register an ifunc library (source side), returning its handle.
    pub fn register_library(&mut self, library: IfuncLibrary) -> IfuncHandle {
        self.registry.register(library)
    }

    /// Look up a registered library handle by name.
    pub fn library_handle(&self, name: &str) -> Option<IfuncHandle> {
        self.registry.handle(name)
    }

    /// Create a bitcode-representation message for a registered library.
    pub fn create_bitcode_message(
        &self,
        handle: IfuncHandle,
        payload: Vec<u8>,
    ) -> Result<IfuncMessage> {
        let lib = self.registry.get(handle)?;
        Ok(IfuncMessage::bitcode(handle, lib, payload))
    }

    /// Create a binary-representation message for a registered library,
    /// targeted at a destination triple.
    pub fn create_binary_message(
        &self,
        handle: IfuncHandle,
        target_triple: &str,
        payload: Vec<u8>,
    ) -> Result<IfuncMessage> {
        let lib = self.registry.get(handle)?;
        IfuncMessage::binary(handle, lib, target_triple, payload)
    }

    /// Send an ifunc message to `dst`, applying the sender-side code cache.
    /// Returns the number of bytes actually posted to the fabric.
    pub fn send_ifunc(&mut self, message: &IfuncMessage, dst: WorkerAddr) -> usize {
        // Both encodings are cached on the message: repeat sends (to any
        // destination) clone a shared buffer instead of re-encoding.
        let bytes = match self.sender_cache.on_send(&message.frame.ifunc_name, dst) {
            SendDecision::SendFull => {
                self.stats.ifunc_full_sends += 1;
                message.wire_full()
            }
            SendDecision::SendTruncated => {
                self.stats.ifunc_truncated_sends += 1;
                message.wire_truncated()
            }
        };
        let len = bytes.len();
        self.stats.bytes_sent += len as u64;
        self.worker.post(dst, UcpOp::IfuncFrame { bytes });
        len
    }

    /// Post a one-sided GET of `len` bytes at `addr` on node `dst`.
    pub fn post_get(&mut self, dst: WorkerAddr, addr: u64, len: u64) -> RequestId {
        self.stats.bytes_sent += 32;
        self.worker.post(
            dst,
            UcpOp::Get {
                remote_addr: addr,
                len,
            },
        )
    }

    /// Post a one-sided PUT of `data` at `addr` on node `dst`.  Passing a
    /// [`Bytes`] view makes the post zero-copy end to end.
    pub fn post_put(&mut self, dst: WorkerAddr, addr: u64, data: impl Into<Bytes>) -> RequestId {
        let data = data.into();
        self.stats.bytes_sent += (24 + data.len()) as u64;
        self.worker.post(
            dst,
            UcpOp::Put {
                remote_addr: addr,
                data,
            },
        )
    }

    /// Post a *confirmed* one-sided PUT: the destination applies the write
    /// and answers with a [`UcpOp::PutAck`], which surfaces locally as
    /// [`Completion::Put`] carrying the returned request id.
    pub fn post_put_confirmed(
        &mut self,
        dst: WorkerAddr,
        addr: u64,
        data: impl Into<Bytes>,
    ) -> RequestId {
        let data = data.into();
        self.stats.bytes_sent += (24 + data.len()) as u64;
        self.worker.post(
            dst,
            UcpOp::PutConfirm {
                remote_addr: addr,
                data,
            },
        )
    }

    /// Send an Active Message to a predeployed handler on `dst`.  Returns the
    /// wire size posted.
    pub fn send_am(
        &mut self,
        handler: &str,
        dst: WorkerAddr,
        payload: impl Into<Bytes>,
    ) -> Result<usize> {
        let id = self
            .am_ids
            .get(handler)
            .copied()
            .ok_or_else(|| CoreError::UnknownAmHandler {
                name: handler.to_string(),
            })?;
        let op = UcpOp::ActiveMessage {
            handler: id,
            payload: payload.into(),
        };
        let size = op.wire_size();
        self.stats.bytes_sent += size as u64;
        self.worker.post(dst, op);
        Ok(size)
    }

    // --- Active-Message baseline (predeployed code) --------------------------

    /// Predeploy a native Active-Message handler.  Handlers must be deployed
    /// on every node in the same order so the ids agree cluster-wide, exactly
    /// like a collectively pre-registered AM table.
    pub fn deploy_am_handler(
        &mut self,
        name: impl Into<String>,
        handler: NativeAmHandler,
    ) -> AmHandlerId {
        let name = name.into();
        if let Some(&id) = self.am_ids.get(&name) {
            self.am_handlers.insert(name, handler);
            return id;
        }
        let id = self.worker.register_am_handler(name.clone());
        self.am_ids.insert(name.clone(), id);
        self.am_names.push(name.clone());
        self.am_handlers.insert(name, handler);
        id
    }

    /// Names of predeployed AM handlers, in id order.
    pub fn am_handler_names(&self) -> &[String] {
        &self.am_names
    }

    // --- delivery and polling (target side) ----------------------------------

    /// Drain operations this node has posted (called by the transport driver).
    pub fn take_outgoing(&mut self) -> Vec<OutgoingMessage> {
        self.worker.take_outgoing()
    }

    /// Deliver an in-flight message into this node's worker (called by the
    /// transport driver when the message arrives).
    pub fn deliver(&mut self, msg: OutgoingMessage) {
        self.worker.deliver(msg);
    }

    /// Poll the worker: handle up to `max_events` delivered messages,
    /// returning one [`ProcessOutcome`] per handled message.  This is the
    /// paper's "ifunc polling function" that a daemon thread would call
    /// periodically.
    pub fn poll(&mut self, max_events: usize) -> Vec<Result<ProcessOutcome>> {
        let events = self.worker.progress(max_events);
        events.into_iter().map(|ev| self.handle_event(ev)).collect()
    }

    /// Take accumulated client-side completions (GET results, X-RDMA results).
    pub fn take_completions(&mut self) -> Vec<Completion> {
        std::mem::take(&mut self.completions)
    }

    /// Number of completions waiting to be taken.
    pub fn completions_pending(&self) -> usize {
        self.completions.len()
    }

    /// Read the result-mailbox slot `slot`, returning the value if a result
    /// has arrived (one-sided completion check).
    pub fn poll_result_slot(&self, slot: u64) -> Option<u64> {
        let mut buf = [0u8; 16];
        self.memory.read(result_slot_addr(slot), &mut buf).ok()?;
        decode_result_record(&buf)
    }

    /// Clear a result-mailbox slot.
    pub fn clear_result_slot(&mut self, slot: u64) {
        let _ = self.memory.write(result_slot_addr(slot), &[0u8; 16]);
    }

    /// Apply a remotely written PUT payload to local memory, surfacing a
    /// result completion when it lands in the X-RDMA mailbox.
    fn apply_put(&mut self, addr: u64, data: &Bytes) -> Result<()> {
        self.memory
            .write(addr, data)
            .map_err(|e| CoreError::Sim(e.to_string()))?;
        self.stats.puts_applied += 1;
        if is_result_mailbox_addr(addr) {
            if let (Some(slot), Some(value)) =
                (result_slot_of_addr(addr), decode_result_record(data))
            {
                self.completions.push(Completion::Result { slot, value });
            }
        }
        Ok(())
    }

    fn handle_event(&mut self, event: WorkerEvent) -> Result<ProcessOutcome> {
        match event {
            WorkerEvent::PutReceived { addr, data, .. } => {
                self.apply_put(addr, &data)?;
                Ok(ProcessOutcome::passive(OutcomeKind::PutApplied))
            }
            WorkerEvent::PutConfirmReceived {
                from,
                addr,
                data,
                request,
            } => {
                self.apply_put(addr, &data)?;
                self.worker.post(from, UcpOp::PutAck { acked: request });
                Ok(ProcessOutcome::passive(OutcomeKind::PutConfirmed))
            }
            WorkerEvent::PutAcked { acked } => {
                self.completions.push(Completion::Put { request: acked });
                Ok(ProcessOutcome::passive(OutcomeKind::PutAckReceived))
            }
            WorkerEvent::GetRequest {
                from,
                addr,
                len,
                request,
            } => {
                // Read straight into a recycled pool buffer: serving a GET
                // allocates nothing in steady state.
                let mut writer = self.reply_pool.acquire(len as usize);
                self.memory
                    .read(addr, writer.reserve(len as usize))
                    .map_err(|e| CoreError::Sim(e.to_string()))?;
                let data = writer.freeze(&mut self.reply_pool);
                self.worker.post(from, UcpOp::GetReply { request, data });
                self.stats.gets_served += 1;
                Ok(ProcessOutcome::passive(OutcomeKind::GetServed))
            }
            WorkerEvent::GetCompleted { request, data } => {
                self.completions.push(Completion::Get { request, data });
                Ok(ProcessOutcome::passive(OutcomeKind::GetCompleted))
            }
            WorkerEvent::AmReceived {
                handler, payload, ..
            } => self.handle_am(handler, &payload),
            WorkerEvent::IfuncReceived { bytes, .. } => self.handle_ifunc_frame(&bytes),
        }
    }

    fn handle_am(&mut self, handler: AmHandlerId, payload: &[u8]) -> Result<ProcessOutcome> {
        let name = self
            .worker
            .am_handler_name(handler)
            .ok_or_else(|| CoreError::UnknownAmHandler {
                name: format!("#{}", handler.0),
            })?
            .to_string();
        let func = self
            .am_handlers
            .get(&name)
            .cloned()
            .ok_or_else(|| CoreError::UnknownAmHandler { name: name.clone() })?;
        let mut actions = Vec::new();
        let cycles = {
            let mut ctx = AmContext {
                node_id: self.node_id.0,
                num_nodes: self.num_nodes,
                memory: &mut self.memory,
                actions: &mut actions,
            };
            func(&mut ctx, payload)
        };
        self.stats.ams_executed += 1;
        let actions_emitted = actions.len();
        self.perform_actions(actions, None)?;
        Ok(ProcessOutcome {
            kind: OutcomeKind::AmExecuted,
            exec_cycles: cycles,
            jit_bitcode_bytes: None,
            binary_loaded: false,
            actions_emitted,
            payload_bytes: payload.len(),
        })
    }

    fn handle_ifunc_frame(&mut self, bytes: &Bytes) -> Result<ProcessOutcome> {
        // Zero-copy: payload and code of the decoded frame are views of the
        // received buffer.
        let frame = MessageFrame::decode_view(bytes)?;
        let name = frame.ifunc_name.clone();

        let mut jit_bitcode_bytes = None;
        let mut binary_loaded = false;
        let first_arrival;

        if frame.is_truncated() {
            self.stats.truncated_frames_received += 1;
            if !self.received.contains_key(&name) {
                return Err(CoreError::TruncatedWithoutRegistration { name });
            }
            first_arrival = false;
        } else {
            self.stats.full_frames_received += 1;
            if self.received.contains_key(&name) {
                // Code arrived again even though we already have it (e.g. a
                // different source that had not sent to us before); treat as
                // cached — no recompilation, matching ORC-JIT's symbol cache.
                first_arrival = false;
            } else {
                first_arrival = true;
                let registered = self.register_received(&frame)?;
                jit_bitcode_bytes = registered.0;
                binary_loaded = registered.1;
            }
        }

        let outcome = self.execute_ifunc(&name, &frame.payload)?;
        self.stats.ifuncs_executed += 1;
        Ok(ProcessOutcome {
            kind: if first_arrival {
                OutcomeKind::IfuncExecutedFirstArrival
            } else {
                OutcomeKind::IfuncExecutedCached
            },
            exec_cycles: outcome.0,
            jit_bitcode_bytes,
            binary_loaded,
            actions_emitted: outcome.1,
            payload_bytes: frame.payload.len(),
        })
    }

    /// Register a newly arrived full frame.  Returns (jit_bitcode_bytes,
    /// binary_loaded).
    fn register_received(&mut self, frame: &DecodedFrame) -> Result<(Option<usize>, bool)> {
        let code = frame
            .code
            .as_ref()
            .expect("register_received requires a full frame");
        match frame.repr {
            CodeRepr::Bitcode => {
                let fat = FatBitcode::decode(code)?;
                // The DEPS field of the frame wins over whatever the archive
                // itself recorded (they are normally identical).
                let mut fat = fat;
                for d in &frame.deps {
                    if !fat.deps.contains(d) {
                        fat.deps.push(d.clone());
                    }
                }
                let selected_size = fat.select(self.triple).map(|e| e.bitcode.len())?;
                self.jit.add_fat_bitcode(&fat, &mut self.memory)?;
                self.stats.jit_compilations += 1;
                self.received.insert(
                    frame.ifunc_name.clone(),
                    ReceivedIfunc {
                        repr: CodeRepr::Bitcode,
                        // A view of the arrival buffer — no copy.
                        code: code.clone(),
                        deps: frame.deps.clone(),
                        binary: None,
                    },
                );
                Ok((Some(selected_size), false))
            }
            CodeRepr::Binary => {
                let obj = tc_binfmt::ObjectFile::decode(code)?;
                let resolver = FrameworkSymbolResolver;
                let image = tc_binfmt::load_object(
                    &obj,
                    &self.triple.name(),
                    &resolver,
                    tc_binfmt::LoadOptions::default(),
                )?;
                let mach = tc_jit::module_from_image(&image)?;
                self.stats.binary_loads += 1;
                self.received.insert(
                    frame.ifunc_name.clone(),
                    ReceivedIfunc {
                        repr: CodeRepr::Binary,
                        code: code.clone(),
                        deps: frame.deps.clone(),
                        binary: Some(Arc::new(mach)),
                    },
                );
                Ok((None, true))
            }
        }
    }

    /// Execute a registered ifunc with the given payload.  Returns
    /// (exec_cycles, actions_emitted).
    fn execute_ifunc(&mut self, name: &str, payload: &[u8]) -> Result<(u64, usize)> {
        // Stage the payload.
        self.memory
            .write(PAYLOAD_STAGING_BASE, payload)
            .map_err(|e| CoreError::Sim(e.to_string()))?;

        let rec = self
            .received
            .get(name)
            .ok_or_else(|| CoreError::UnknownIfunc {
                name: name.to_string(),
            })?;
        let repr = rec.repr;
        let binary = rec.binary.clone();

        let mut host = FrameworkHost {
            node_id: self.node_id.0,
            num_nodes: self.num_nodes,
            current_ifunc: name.to_string(),
            actions: Vec::new(),
        };

        let cycles = match repr {
            CodeRepr::Bitcode => {
                let out = self.jit.execute_entry(
                    name,
                    PAYLOAD_STAGING_BASE,
                    payload.len() as u64,
                    TARGET_REGION_BASE,
                    &mut self.memory,
                    &mut host,
                )?;
                out.cycles
            }
            CodeRepr::Binary => {
                let mach = binary.expect("binary ifunc without loaded image");
                let out = self.engine.run(
                    &mach,
                    tc_bitir::Module::ENTRY_NAME,
                    &[
                        PAYLOAD_STAGING_BASE,
                        payload.len() as u64,
                        TARGET_REGION_BASE,
                    ],
                    &[],
                    &mut self.memory,
                    &mut host,
                )?;
                out.cycles
            }
        };

        let actions = host.actions;
        let emitted = actions.len();
        self.perform_actions(actions, Some(name))?;
        Ok((cycles, emitted))
    }

    /// Convert follow-on actions into posted fabric operations.
    fn perform_actions(
        &mut self,
        actions: Vec<HostAction>,
        current_ifunc: Option<&str>,
    ) -> Result<()> {
        for action in actions {
            match action {
                HostAction::Put {
                    dst,
                    remote_addr,
                    data,
                } => {
                    if dst == self.node_id {
                        self.memory
                            .write(remote_addr, &data)
                            .map_err(|e| CoreError::Sim(e.to_string()))?;
                    } else {
                        self.post_put(dst, remote_addr, data);
                    }
                }
                HostAction::ForwardSelf { dst, payload } => {
                    let name = current_ifunc.ok_or_else(|| {
                        CoreError::Sim("tc_forward_self called outside an ifunc".into())
                    })?;
                    self.forward_received(name, dst, payload)?;
                }
                HostAction::SendIfunc { name, dst, payload } => {
                    if let Some(handle) = self.registry.handle(&name) {
                        let msg = self.create_bitcode_message(handle, payload)?;
                        self.send_ifunc(&msg, dst);
                    } else if self.received.contains_key(&name) {
                        self.forward_received(&name, dst, payload)?;
                    } else {
                        return Err(CoreError::UnknownIfunc { name });
                    }
                }
                HostAction::SendAm {
                    handler,
                    dst,
                    payload,
                } => {
                    self.send_am(&handler, dst, payload)?;
                }
                HostAction::ReturnResult { dst, slot, value } => {
                    let record = encode_result_record(value).to_vec();
                    if dst == self.node_id {
                        self.memory
                            .write(result_slot_addr(slot), &record)
                            .map_err(|e| CoreError::Sim(e.to_string()))?;
                        self.completions.push(Completion::Result { slot, value });
                    } else {
                        self.post_put(dst, result_slot_addr(slot), record);
                    }
                }
            }
        }
        Ok(())
    }

    /// Forward a *received* ifunc onward to another node, re-using its code
    /// section and applying this node's own sender cache — recursive
    /// propagation of injected code.
    fn forward_received(&mut self, name: &str, dst: WorkerAddr, payload: Vec<u8>) -> Result<()> {
        // Local delivery: execute directly without touching the fabric.
        if dst == self.node_id {
            let (_cycles, _emitted) = self.execute_ifunc(name, &payload)?;
            self.stats.ifuncs_executed += 1;
            return Ok(());
        }
        let rec = self
            .received
            .get(name)
            .ok_or_else(|| CoreError::UnknownIfunc {
                name: name.to_string(),
            })?;
        let frame = MessageFrame::new(
            name.to_string(),
            rec.repr,
            payload,
            rec.code.clone(),
            rec.deps.clone(),
        );
        let bytes = match self.sender_cache.on_send(name, dst) {
            SendDecision::SendFull => {
                self.stats.ifunc_full_sends += 1;
                frame.encode_full()
            }
            SendDecision::SendTruncated => {
                self.stats.ifunc_truncated_sends += 1;
                frame.encode_truncated()
            }
        };
        self.stats.bytes_sent += bytes.len() as u64;
        self.worker.post(dst, UcpOp::IfuncFrame { bytes });
        Ok(())
    }
}

/// Resolver used when loading binary ifuncs: framework symbols resolve to
/// symbolic token addresses (execution dispatches by name through the host
/// interface, so the addresses only need to exist).
struct FrameworkSymbolResolver;

impl tc_binfmt::SymbolResolver for FrameworkSymbolResolver {
    fn resolve(&self, symbol: &str) -> Option<u64> {
        // Framework and standard-library symbols all resolve; anything else
        // is unknown, which surfaces the paper's remote-linking failure mode.
        const KNOWN_PREFIXES: [&str; 2] = ["tc_", "omp_"];
        const KNOWN_SYMBOLS: [&str; 6] = ["memcpy", "memset", "strlen_u64", "sqrt", "fabs", "pow2"];
        if KNOWN_PREFIXES.iter().any(|p| symbol.starts_with(p)) || KNOWN_SYMBOLS.contains(&symbol) {
            // Stable fake address derived from the name.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in symbol.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            Some(0x6000_0000_0000 | (h & 0xffff_ffff))
        } else {
            None
        }
    }
}

/// The [`ExternalHost`] exposed to executing ifuncs: framework services
/// reachable as external symbols.
struct FrameworkHost {
    node_id: u32,
    num_nodes: u32,
    current_ifunc: String,
    actions: Vec<HostAction>,
}

impl FrameworkHost {
    fn read_bytes(mem: &mut dyn Memory, addr: u64, len: u64) -> tc_jit::Result<Vec<u8>> {
        let mut buf = vec![0u8; len as usize];
        mem.read(addr, &mut buf)?;
        Ok(buf)
    }
}

impl ExternalHost for FrameworkHost {
    fn call_external(
        &mut self,
        symbol: &str,
        args: &[u64],
        mem: &mut dyn Memory,
    ) -> tc_jit::Result<u64> {
        let need = |n: usize| -> tc_jit::Result<()> {
            if args.len() != n {
                Err(JitError::Host(format!(
                    "{symbol} expects {n} arguments, got {}",
                    args.len()
                )))
            } else {
                Ok(())
            }
        };
        match symbol {
            "tc_node_id" => {
                need(0)?;
                Ok(u64::from(self.node_id))
            }
            "tc_num_nodes" => {
                need(0)?;
                Ok(u64::from(self.num_nodes))
            }
            "tc_put" => {
                // tc_put(dst_node, remote_addr, local_addr, len)
                need(4)?;
                let data = Self::read_bytes(mem, args[2], args[3])?;
                self.actions.push(HostAction::Put {
                    dst: WorkerAddr(args[0] as u32),
                    remote_addr: args[1],
                    data,
                });
                Ok(0)
            }
            "tc_forward_self" => {
                // tc_forward_self(dst_node, payload_addr, payload_len)
                need(3)?;
                let payload = Self::read_bytes(mem, args[1], args[2])?;
                self.actions.push(HostAction::ForwardSelf {
                    dst: WorkerAddr(args[0] as u32),
                    payload,
                });
                Ok(0)
            }
            "tc_return_result" => {
                // tc_return_result(dst_node, slot, value)
                need(3)?;
                self.actions.push(HostAction::ReturnResult {
                    dst: WorkerAddr(args[0] as u32),
                    slot: args[1],
                    value: args[2],
                });
                Ok(0)
            }
            "tc_self_name_len" => {
                need(0)?;
                Ok(self.current_ifunc.len() as u64)
            }
            other => Err(JitError::UnresolvedSymbol {
                symbol: other.to_string(),
            }),
        }
    }

    fn external_cost(&self, symbol: &str) -> u64 {
        match symbol {
            "tc_node_id" | "tc_num_nodes" | "tc_self_name_len" => 5,
            // Posting a network operation costs some local work; the fabric
            // latency itself is charged by the simulator.
            _ => 150,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ifunc::{build_ifunc_library, ToolchainOptions};
    use tc_bitir::{BinOp, Module, ModuleBuilder, ScalarType};
    use tc_jit::MemoryExt;
    use tc_ucx::LoopbackNetwork;

    fn tsi_module() -> Module {
        let mut mb = ModuleBuilder::new("tsi");
        {
            let mut f = mb.entry_function();
            let payload = f.param(0);
            let target = f.param(2);
            let delta = f.load(ScalarType::U8, payload, 0);
            let counter = f.load(ScalarType::U64, target, 0);
            let sum = f.bin(BinOp::Add, ScalarType::U64, counter, delta);
            f.store(ScalarType::U64, sum, target, 0);
            let z = f.const_i64(0);
            f.ret(z);
            f.finish();
        }
        mb.build()
    }

    /// An ifunc that returns a result to the client: reads a u64 value from
    /// the payload, doubles it, and calls tc_return_result(client, slot, v).
    fn doubler_module() -> Module {
        let mut mb = ModuleBuilder::new("doubler");
        {
            let mut f = mb.entry_function();
            let payload = f.param(0);
            let client = f.load(ScalarType::U64, payload, 0);
            let slot = f.load(ScalarType::U64, payload, 8);
            let value = f.load(ScalarType::U64, payload, 16);
            let two = f.const_u64(2);
            let doubled = f.bin(BinOp::Mul, ScalarType::U64, value, two);
            f.call_ext("tc_return_result", vec![client, slot, doubled], true);
            let z = f.const_i64(0);
            f.ret(z);
            f.finish();
        }
        mb.build()
    }

    fn lib(module: &Module) -> IfuncLibrary {
        build_ifunc_library(module, &ToolchainOptions::default()).unwrap()
    }

    /// Move all posted messages between two runtimes until quiescent.
    fn route(a: &mut NodeRuntime, b: &mut NodeRuntime) -> Vec<Result<ProcessOutcome>> {
        let mut outcomes = Vec::new();
        for _ in 0..64 {
            let mut moved = false;
            for msg in a.take_outgoing() {
                let dst = msg.dst;
                moved = true;
                if dst == b.node_id() {
                    b.deliver(msg);
                } else if dst == a.node_id() {
                    a.deliver(msg);
                }
            }
            for msg in b.take_outgoing() {
                let dst = msg.dst;
                moved = true;
                if dst == a.node_id() {
                    a.deliver(msg);
                } else if dst == b.node_id() {
                    b.deliver(msg);
                }
            }
            outcomes.extend(a.poll(usize::MAX));
            outcomes.extend(b.poll(usize::MAX));
            if !moved && a.worker.pending_inbox() == 0 && b.worker.pending_inbox() == 0 {
                break;
            }
        }
        outcomes
    }

    #[test]
    fn first_send_jits_then_caches() {
        let mut client = NodeRuntime::new(WorkerAddr(0), 2, TargetTriple::THOR_XEON);
        let mut server = NodeRuntime::new(WorkerAddr(1), 2, TargetTriple::THOR_BF2);
        let handle = client.register_library(lib(&tsi_module()));
        let msg = client.create_bitcode_message(handle, vec![5]).unwrap();

        // Seed the server's counter.
        server.memory.write_u64(TARGET_REGION_BASE, 100).unwrap();

        let first_size = client.send_ifunc(&msg, WorkerAddr(1));
        let outcomes = route(&mut client, &mut server);
        let exec: Vec<_> = outcomes.into_iter().map(|o| o.unwrap()).collect();
        let first = exec
            .iter()
            .find(|o| matches!(o.kind, OutcomeKind::IfuncExecutedFirstArrival))
            .expect("first arrival outcome");
        assert!(first.jit_bitcode_bytes.unwrap() > 500);
        assert_eq!(server.memory.read_u64(TARGET_REGION_BASE).unwrap(), 105);

        // Second send: truncated frame, no recompilation, still executes.
        let second_size = client.send_ifunc(&msg, WorkerAddr(1));
        assert!(second_size * 20 < first_size, "cached frame must be tiny");
        let outcomes = route(&mut client, &mut server);
        let exec: Vec<_> = outcomes.into_iter().map(|o| o.unwrap()).collect();
        assert!(exec
            .iter()
            .any(|o| matches!(o.kind, OutcomeKind::IfuncExecutedCached)));
        assert_eq!(server.memory.read_u64(TARGET_REGION_BASE).unwrap(), 110);
        assert_eq!(server.jit_stats().compilations, 1);
        assert_eq!(server.stats.truncated_frames_received, 1);
    }

    #[test]
    fn binary_ifunc_roundtrip_on_matching_isa() {
        let mut client = NodeRuntime::new(WorkerAddr(0), 2, TargetTriple::THOR_XEON);
        let mut server = NodeRuntime::new(WorkerAddr(1), 2, TargetTriple::THOR_XEON);
        let handle = client.register_library(lib(&tsi_module()));
        let msg = client
            .create_binary_message(handle, "x86_64-xeon-e5-sim", vec![3])
            .unwrap();
        server.memory.write_u64(TARGET_REGION_BASE, 1).unwrap();
        client.send_ifunc(&msg, WorkerAddr(1));
        let outcomes = route(&mut client, &mut server);
        assert!(outcomes.iter().all(|o| o.is_ok()));
        assert_eq!(server.memory.read_u64(TARGET_REGION_BASE).unwrap(), 4);
        assert_eq!(server.stats.binary_loads, 1);
        assert_eq!(
            server.jit_stats().compilations,
            0,
            "binary path must not JIT"
        );
    }

    #[test]
    fn binary_ifunc_rejected_on_wrong_isa() {
        let mut client = NodeRuntime::new(WorkerAddr(0), 2, TargetTriple::THOR_XEON);
        let mut server = NodeRuntime::new(WorkerAddr(1), 2, TargetTriple::THOR_BF2);
        let handle = client.register_library(lib(&tsi_module()));
        // Client (x86) builds a binary for its own ISA and sends it to the Arm DPU.
        let msg = client
            .create_binary_message(handle, "x86_64-xeon-e5-sim", vec![3])
            .unwrap();
        client.send_ifunc(&msg, WorkerAddr(1));
        let outcomes = route(&mut client, &mut server);
        assert!(
            outcomes
                .iter()
                .any(|o| matches!(o, Err(CoreError::BinaryLoad(_)))),
            "loading an x86 binary on an Arm DPU must fail"
        );
    }

    #[test]
    fn truncated_frame_to_fresh_node_is_an_error() {
        let mut client = NodeRuntime::new(WorkerAddr(0), 3, TargetTriple::THOR_XEON);
        let mut server_a = NodeRuntime::new(WorkerAddr(1), 3, TargetTriple::THOR_BF2);
        let mut server_b = NodeRuntime::new(WorkerAddr(2), 3, TargetTriple::THOR_BF2);
        let handle = client.register_library(lib(&tsi_module()));
        let msg = client.create_bitcode_message(handle, vec![1]).unwrap();

        // Prime server A so the cache records (tsi, A)...
        client.send_ifunc(&msg, WorkerAddr(1));
        route(&mut client, &mut server_a);

        // ...then forge the situation by sending a *truncated* frame straight
        // to server B (bypassing the cache), which has never seen the code.
        let bytes = msg.frame.encode_truncated();
        client
            .worker
            .post(WorkerAddr(2), UcpOp::IfuncFrame { bytes });
        for m in client.take_outgoing() {
            server_b.deliver(m);
        }
        let outcomes = server_b.poll(usize::MAX);
        assert!(matches!(
            outcomes[0],
            Err(CoreError::TruncatedWithoutRegistration { .. })
        ));
    }

    #[test]
    fn xrdma_return_result_reaches_client_mailbox() {
        let mut client = NodeRuntime::new(WorkerAddr(0), 2, TargetTriple::THOR_XEON);
        let mut server = NodeRuntime::new(WorkerAddr(1), 2, TargetTriple::THOR_BF2);
        let handle = client.register_library(lib(&doubler_module()));

        let mut payload = Vec::new();
        payload.extend_from_slice(&0u64.to_le_bytes()); // client node id
        payload.extend_from_slice(&7u64.to_le_bytes()); // mailbox slot
        payload.extend_from_slice(&21u64.to_le_bytes()); // value to double
        let msg = client.create_bitcode_message(handle, payload).unwrap();
        client.send_ifunc(&msg, WorkerAddr(1));
        route(&mut client, &mut server);

        assert_eq!(client.poll_result_slot(7), Some(42));
        let completions = client.take_completions();
        assert!(completions.contains(&Completion::Result { slot: 7, value: 42 }));
        client.clear_result_slot(7);
        assert_eq!(client.poll_result_slot(7), None);
    }

    #[test]
    fn get_request_is_served_from_node_memory() {
        let mut client = NodeRuntime::new(WorkerAddr(0), 2, TargetTriple::THOR_XEON);
        let mut server = NodeRuntime::new(WorkerAddr(1), 2, TargetTriple::THOR_XEON);
        server
            .memory
            .write_u64(crate::layout::DATA_REGION_BASE, 0xfeed)
            .unwrap();
        let req = client.post_get(WorkerAddr(1), crate::layout::DATA_REGION_BASE, 8);
        route(&mut client, &mut server);
        let completions = client.take_completions();
        match &completions[0] {
            Completion::Get { request, data } => {
                assert_eq!(*request, req);
                assert_eq!(u64::from_le_bytes(data[..8].try_into().unwrap()), 0xfeed);
            }
            other => panic!("unexpected completion {other:?}"),
        }
        assert_eq!(server.stats.gets_served, 1);
    }

    #[test]
    fn am_baseline_executes_predeployed_handler() {
        let mut client = NodeRuntime::new(WorkerAddr(0), 2, TargetTriple::THOR_XEON);
        let mut server = NodeRuntime::new(WorkerAddr(1), 2, TargetTriple::THOR_BF2);
        // Predeploy the increment handler on both nodes (same order ⇒ same id).
        let handler: NativeAmHandler = Arc::new(|ctx, payload| {
            let delta = u64::from(payload.first().copied().unwrap_or(0));
            let old = ctx.memory.read_u64(TARGET_REGION_BASE).unwrap_or(0);
            let _ = ctx.memory.write_u64(TARGET_REGION_BASE, old + delta);
            30
        });
        client.deploy_am_handler("tsi_increment", handler.clone());
        server.deploy_am_handler("tsi_increment", handler);

        server.memory.write_u64(TARGET_REGION_BASE, 40).unwrap();
        let size = client
            .send_am("tsi_increment", WorkerAddr(1), vec![2])
            .unwrap();
        assert!(size < 64, "AM request must be tiny ({size} bytes)");
        route(&mut client, &mut server);
        assert_eq!(server.memory.read_u64(TARGET_REGION_BASE).unwrap(), 42);
        assert_eq!(server.stats.ams_executed, 1);

        assert!(client
            .send_am("not_deployed", WorkerAddr(1), vec![])
            .is_err());
    }

    #[test]
    fn cached_frame_sizes_match_paper_scale() {
        let mut client = NodeRuntime::new(WorkerAddr(0), 2, TargetTriple::THOR_XEON);
        let handle = client.register_library(lib(&tsi_module()));
        let msg = client.create_bitcode_message(handle, vec![1]).unwrap();
        let full = client.send_ifunc(&msg, WorkerAddr(1));
        let truncated = client.send_ifunc(&msg, WorkerAddr(1));
        // Paper: 26 B cached vs 5185 B uncached.  Our encodings differ in
        // absolute size (five targets in the archive) but the ratio and the
        // "tens of bytes vs kilobytes" split must hold.
        assert!(truncated < 64, "truncated {truncated}");
        assert!(full > 2_000, "full {full}");
    }

    #[test]
    fn loopback_network_integration() {
        // Exercise the ucx loopback driver end-to-end with runtimes attached.
        let net = LoopbackNetwork::new(1);
        assert_eq!(net.len(), 1);
        // (The runtimes own their workers; the loopback network is exercised
        // directly in tc-ucx tests.  Here we only check constructibility so
        // the dependency stays honest.)
        assert!(!net.is_empty());
    }
}
